// Classification backends of the serve degradation ladder.
//
// Three interchangeable backends implement one interface; the circuit
// breaker (breaker.hpp) decides which one a batch runs on:
//
//   * CnnBackend(full)    — rasterize a full-resolution flowpic per flow,
//                           micro-batch into the supervised LeNet.
//   * CnnBackend(reduced) — the same CNN at a reduced flowpic resolution:
//                           ~(full/reduced)^2 cheaper rasterize + forward.
//   * GbtBackend          — the paper's ML baseline: 30-element early
//                           time-series into the GBT ensemble; no
//                           rasterization, microseconds per flow.
//
// classify_scored() polls its CancelToken per flow, so a batch deadline (or
// an injected backend stall served through the token) unwinds with
// CancelledError between flows — the service turns that into typed
// `deadline` sheds and a breaker trip, never a hang.
//
// Every backend returns *calibrated scores*, not bare labels: the CNN path
// applies its fitted softmax temperature (nn/calibration.hpp, persisted in
// checkpoint v3) before taking the max class probability; the GBT path uses
// the ensemble's margin softmax.  The service compares that confidence
// against the open-set threshold to route low-score flows to the typed
// `unknown` outcome, and feeds it to the drift monitor.
#pragma once

#include "fptc/serve/flow_table.hpp"

#include "fptc/gbt/gbt.hpp"
#include "fptc/nn/calibration.hpp"
#include "fptc/nn/sequential.hpp"
#include "fptc/util/cancel.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace fptc::serve {

/// One flow's verdict: the argmax class and its calibrated probability.
struct ScoredPrediction {
    std::size_t label = 0;
    double confidence = 1.0;
};

class Backend {
public:
    virtual ~Backend() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// Predicted class + calibrated confidence per flow of the batch, in
    /// order.  Polls `token` between flows; throws util::CancelledError
    /// when it trips.
    [[nodiscard]] virtual std::vector<ScoredPrediction>
    classify_scored(std::span<const ReadyFlow> batch, const util::CancelToken& token) = 0;

    /// Label-only convenience wrapper over classify_scored().
    [[nodiscard]] std::vector<std::size_t> classify(std::span<const ReadyFlow> batch,
                                                    const util::CancelToken& token);
};

/// Flowpic CNN backend at a fixed resolution.  Owns the network; construct
/// untrained (deterministic weights from `seed`) or move a trained
/// Sequential in.
class CnnBackend final : public Backend {
public:
    CnnBackend(std::size_t resolution, nn::Sequential network);

    [[nodiscard]] static std::unique_ptr<CnnBackend> untrained(std::size_t resolution,
                                                               std::size_t num_classes,
                                                               std::uint64_t seed);

    [[nodiscard]] const char* name() const noexcept override;
    [[nodiscard]] std::vector<ScoredPrediction>
    classify_scored(std::span<const ReadyFlow> batch, const util::CancelToken& token) override;

    [[nodiscard]] std::size_t resolution() const noexcept { return resolution_; }
    [[nodiscard]] nn::Sequential& network() noexcept { return network_; }

    /// Calibration applied to logits before scoring (default T = 1).  The
    /// hot-reload path swaps network and calibration together.
    [[nodiscard]] const nn::Calibration& calibration() const noexcept { return calibration_; }
    void set_calibration(const nn::Calibration& calibration) noexcept
    {
        calibration_ = calibration;
    }

    /// Atomically (from the classifier thread's perspective: it is the only
    /// caller) replace the network and its calibration — the canary gate's
    /// commit step.
    void swap_model(nn::Sequential&& network, const nn::Calibration& calibration)
    {
        network_ = std::move(network);
        calibration_ = calibration;
    }

private:
    std::size_t resolution_;
    nn::Sequential network_;
    nn::Calibration calibration_;
};

/// Early time-series GBT backend (the ladder's cheap fallback).
class GbtBackend final : public Backend {
public:
    explicit GbtBackend(gbt::GbtClassifier classifier);

    [[nodiscard]] const char* name() const noexcept override;
    [[nodiscard]] std::vector<ScoredPrediction>
    classify_scored(std::span<const ReadyFlow> batch, const util::CancelToken& token) override;

private:
    gbt::GbtClassifier classifier_;
};

/// The three ladder backends, ready to hand to StreamingClassifier.
struct BackendBundle {
    std::unique_ptr<CnnBackend> full;
    std::unique_ptr<CnnBackend> reduced;
    std::unique_ptr<GbtBackend> fallback;
};

/// Build the ladder.  `train_flows_per_class` > 0 generates that many
/// ucdavis19 flows per class and fits the GBT on them (always cheap) plus
/// the two CNNs for `cnn_epochs` epochs (0 leaves the CNNs untrained —
/// identical forward cost, the right trade for robustness harnesses).
[[nodiscard]] BackendBundle make_backends(std::size_t full_dim, std::size_t reduced_dim,
                                          std::size_t num_classes, std::uint64_t seed,
                                          std::size_t train_flows_per_class = 0,
                                          int cnn_epochs = 0);

} // namespace fptc::serve
