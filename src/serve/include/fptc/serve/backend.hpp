// Classification backends of the serve degradation ladder.
//
// Three interchangeable backends implement one interface; the circuit
// breaker (breaker.hpp) decides which one a batch runs on:
//
//   * CnnBackend(full)    — rasterize a full-resolution flowpic per flow,
//                           micro-batch into the supervised LeNet.
//   * CnnBackend(reduced) — the same CNN at a reduced flowpic resolution:
//                           ~(full/reduced)^2 cheaper rasterize + forward.
//   * GbtBackend          — the paper's ML baseline: 30-element early
//                           time-series into the GBT ensemble; no
//                           rasterization, microseconds per flow.
//
// classify() polls its CancelToken per flow, so a batch deadline (or an
// injected backend stall served through the token) unwinds with
// CancelledError between flows — the service turns that into typed
// `deadline` sheds and a breaker trip, never a hang.
#pragma once

#include "fptc/serve/flow_table.hpp"

#include "fptc/gbt/gbt.hpp"
#include "fptc/nn/sequential.hpp"
#include "fptc/util/cancel.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace fptc::serve {

class Backend {
public:
    virtual ~Backend() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// Predicted class per flow of the batch, in order.  Polls `token`
    /// between flows; throws util::CancelledError when it trips.
    [[nodiscard]] virtual std::vector<std::size_t> classify(std::span<const ReadyFlow> batch,
                                                            const util::CancelToken& token) = 0;
};

/// Flowpic CNN backend at a fixed resolution.  Owns the network; construct
/// untrained (deterministic weights from `seed`) or move a trained
/// Sequential in.
class CnnBackend final : public Backend {
public:
    CnnBackend(std::size_t resolution, nn::Sequential network);

    [[nodiscard]] static std::unique_ptr<CnnBackend> untrained(std::size_t resolution,
                                                               std::size_t num_classes,
                                                               std::uint64_t seed);

    [[nodiscard]] const char* name() const noexcept override;
    [[nodiscard]] std::vector<std::size_t> classify(std::span<const ReadyFlow> batch,
                                                    const util::CancelToken& token) override;

    [[nodiscard]] std::size_t resolution() const noexcept { return resolution_; }
    [[nodiscard]] nn::Sequential& network() noexcept { return network_; }

private:
    std::size_t resolution_;
    nn::Sequential network_;
};

/// Early time-series GBT backend (the ladder's cheap fallback).
class GbtBackend final : public Backend {
public:
    explicit GbtBackend(gbt::GbtClassifier classifier);

    [[nodiscard]] const char* name() const noexcept override;
    [[nodiscard]] std::vector<std::size_t> classify(std::span<const ReadyFlow> batch,
                                                    const util::CancelToken& token) override;

private:
    gbt::GbtClassifier classifier_;
};

/// The three ladder backends, ready to hand to StreamingClassifier.
struct BackendBundle {
    std::unique_ptr<CnnBackend> full;
    std::unique_ptr<CnnBackend> reduced;
    std::unique_ptr<GbtBackend> fallback;
};

/// Build the ladder.  `train_flows_per_class` > 0 generates that many
/// ucdavis19 flows per class and fits the GBT on them (always cheap) plus
/// the two CNNs for `cnn_epochs` epochs (0 leaves the CNNs untrained —
/// identical forward cost, the right trade for robustness harnesses).
[[nodiscard]] BackendBundle make_backends(std::size_t full_dim, std::size_t reduced_dim,
                                          std::size_t num_classes, std::uint64_t seed,
                                          std::size_t train_flows_per_class = 0,
                                          int cnn_epochs = 0);

} // namespace fptc::serve
