// Packet events on the streaming-serve ingest path.
//
// The offline pipeline consumes whole curated flows; the serve pipeline
// consumes an *interleaved* stream of per-packet events for many concurrent
// flows, tagged with the flow they belong to.  Events cross a process
// boundary in a real deployment (a capture tap), so the service treats them
// as untrusted input: every event is validated at ingest and malformed ones
// are quarantined — never parsed into flow state — mirroring the CSV
// quarantine-and-continue semantics of flow/io.
#pragma once

#include "fptc/flow/packet.hpp"

#include <cmath>
#include <cstdint>

namespace fptc::serve {

/// One packet observation of one flow, as seen on the wire.
struct PacketEvent {
    std::uint64_t flow_id = 0;   ///< stream-unique flow identity (0 = invalid)
    std::uint32_t label = 0;     ///< ground-truth class, carried for the oracle
    double timestamp = 0.0;      ///< seconds since the stream epoch (global clock)
    double size = 0.0;           ///< L3 bytes; validated before narrowing to int
    flow::Direction direction = flow::Direction::downstream;
    bool flow_end = false;       ///< generator-marked last packet (advisory only)
};

/// Validate an event at the trust boundary.  Returns nullptr when the event
/// is well-formed, otherwise a static reason string ("nan_timestamp",
/// "negative_timestamp", "bad_size", "no_flow_id") for the quarantine
/// counter.  The size range matches the flowpic representation's domain:
/// (0, kMaxPacketSize] bytes.
[[nodiscard]] inline const char* validate(const PacketEvent& event) noexcept
{
    if (event.flow_id == 0) {
        return "no_flow_id";
    }
    if (std::isnan(event.timestamp) || std::isinf(event.timestamp)) {
        return "nan_timestamp";
    }
    if (event.timestamp < 0.0) {
        return "negative_timestamp";
    }
    if (std::isnan(event.size) || std::isinf(event.size) || event.size <= 0.0 ||
        event.size > static_cast<double>(flow::kMaxPacketSize)) {
        return "bad_size";
    }
    return nullptr;
}

} // namespace fptc::serve
