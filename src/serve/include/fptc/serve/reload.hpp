// Canary-gated hot model reload.
//
// A drift alarm (drift.hpp) — or an operator dropping a new checkpoint at
// the FPTC_SERVE_RELOAD path — must not put an unvetted model on the live
// path: a corrupt or regressed candidate silently misclassifying is worse
// than the drift it was meant to fix.  The reloader gates every candidate
// through a three-stage canary before the swap:
//
//   1. *Structural + semantic validation* — nn::verify_checkpoint: magic,
//      shapes, CRC, and every weight finite and in-range.  A NaN-poisoned
//      file with a correct checksum dies here, not in production batches.
//   2. *Scratch load* — the candidate is deserialized into a scratch
//      network (plus its persisted calibration); the incumbent is untouched
//      if anything throws.
//   3. *Golden replay* — a fixed buffer of labeled flows (regenerated
//      deterministically from the trafficgen seed, so it survives process
//      restarts bit-identically) is classified by incumbent and candidate;
//      the candidate must score within `tolerance` of the incumbent or the
//      attempt is rolled back and counted.
//
// Acceptance bumps the model generation (persisted in serve snapshots, so
// it survives SIGKILL + restore); the candidate file's CRC is remembered so
// an unchanged file is not re-canaried every poll.
//
// Thread safety: none — poll() runs on the classifier thread between
// batches, which is the only user of the target backend; the swap needs no
// locks.
#pragma once

#include "fptc/serve/backend.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace fptc::serve {

struct ReloadConfig {
    std::string path;               ///< candidate checkpoint path; "" disables
    double tolerance = 0.1;         ///< max golden-accuracy drop vs incumbent
    std::size_t canary_flows = 12;  ///< golden flows per class
    std::uint64_t check_every = 8;  ///< poll the path every N batches
    std::size_t num_classes = 5;
    std::uint64_t seed = 1;         ///< golden buffer generator seed
};

struct ReloadStats {
    std::uint64_t attempts = 0;          ///< distinct candidates canaried
    std::uint64_t reloads = 0;           ///< candidates accepted + swapped
    std::uint64_t rollbacks = 0;         ///< candidates rejected (any stage)
    std::uint64_t rejected_invalid = 0;  ///< ... of which failed validation/load
    std::uint64_t rejected_accuracy = 0; ///< ... of which failed the golden replay
    double incumbent_accuracy = 0.0;     ///< golden accuracy at last canary
    double candidate_accuracy = 0.0;
    std::string last_error;              ///< human-readable reason of last rejection
};

class ModelReloader {
public:
    enum class Outcome {
        disabled,     ///< no reload path configured, or target is not a CNN
        not_checked,  ///< between polling intervals
        no_candidate, ///< path configured but no readable file there
        unchanged,    ///< same bytes as the last canaried candidate
        reloaded,     ///< candidate accepted and swapped in
        rolled_back,  ///< candidate rejected; incumbent still serving
    };

    /// `target` may be null (reload disabled — e.g. the gbt_only degraded
    /// worker has no CNN to swap).  The golden buffer is generated in the
    /// constructor; ~canary_flows * num_classes trafficgen flows.
    ModelReloader(const ReloadConfig& config, CnnBackend* target);

    /// Called between batches.  Cheap when the path is unchanged or the
    /// interval has not elapsed.
    Outcome poll();

    /// Force a canary pass now (the drift breaker response), ignoring the
    /// check_every interval.
    Outcome check_now();

    [[nodiscard]] bool enabled() const noexcept
    {
        return target_ != nullptr && !config_.path.empty();
    }
    [[nodiscard]] const ReloadStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::uint32_t model_generation() const noexcept { return model_generation_; }
    /// Restore the generation counter from a durable snapshot.
    void set_model_generation(std::uint32_t generation) noexcept
    {
        model_generation_ = generation;
    }

    /// Golden-replay accuracy of a backend (exposed for tests/benchmarks).
    [[nodiscard]] double golden_accuracy(Backend& backend) const;

private:
    ReloadConfig config_;
    CnnBackend* target_;
    std::vector<ReadyFlow> golden_;
    std::uint64_t polls_ = 0;
    std::uint32_t last_crc_ = 0;
    bool has_last_crc_ = false;
    std::uint32_t model_generation_ = 0;
    ReloadStats stats_;
};

} // namespace fptc::serve
