// Rolling per-flow state for the streaming classifier.
//
// The assembler thread folds validated packet events into per-flow packet
// series and releases a flow for classification once its 15 s flowpic
// window has elapsed in stream time.  Memory is the governed resource:
// every tracked flow holds a util::Charge against the process-wide
// MemBudget, the table enforces its own byte cap on top
// (FPTC_SERVE_MEM_MB), and the degradation path under pressure is LRU flow
// eviction — the least-recently-active flow is dropped and accounted as a
// typed `mem_budget` shed, never an abort and never unaccounted growth.
//
// Single-threaded by design: only the assembler touches the table, so all
// methods are unsynchronized (the bounded queues are the thread boundary).
#pragma once

#include "fptc/serve/event.hpp"
#include "fptc/serve/snapshot.hpp"

#include "fptc/flow/packet.hpp"
#include "fptc/util/membudget.hpp"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

namespace fptc::serve {

/// A flow whose window has closed, ready for classification.  Owns its
/// memory charge: destroying a ReadyFlow (classified or shed) credits the
/// bytes back, so accounting balances by construction.
struct ReadyFlow {
    std::uint64_t flow_id = 0;
    std::uint32_t label = 0;     ///< ground-truth class (oracle/accuracy only)
    double first_ts = 0.0;       ///< stream time of the flow's first packet
    /// Wall (steady) time the table first saw the flow — the start of the
    /// `assembly` stage for latency attribution (flightrec.hpp).  Restored
    /// flows are stamped at restore time: their pre-crash wait is already
    /// typed as restart loss, not assembly time.
    std::chrono::steady_clock::time_point first_seen{};
    flow::Flow flow;             ///< packets with stream-absolute timestamps
    util::Charge charge;
};

/// What add_packet did, for the service's shed accounting.
struct AddOutcome {
    bool admitted = false;   ///< the packet was recorded
    bool new_flow = false;   ///< first packet of a newly tracked flow
    bool shed_self = false;  ///< an already-tracked flow was evicted trying to grow it
    bool quarantined_backwards = false; ///< packet timestamp ran backwards; dropped
    std::size_t evicted = 0; ///< LRU flows evicted to make room (typed mem_budget sheds)
};

class FlowTable {
public:
    /// `max_bytes` caps the table's accounted footprint (its own cap, on
    /// top of the process MemBudget); `window_seconds` is the flowpic
    /// window after which a flow is released for classification.
    FlowTable(std::size_t max_bytes, double window_seconds);

    /// Fold one validated event into the table.  Under memory pressure
    /// (table cap or MemBudget refusal) evicts LRU flows to make room; when
    /// even that fails the packet (new flow) or the flow itself (existing
    /// flow) is shed — see AddOutcome.
    ///
    /// Trust boundary: a packet whose timestamp moves *backwards* within
    /// its flow past kBackwardsTolerance is quarantined (dropped, flagged
    /// in the outcome) rather than recorded — a time-warped packet would
    /// poison the flowpic time axis and, worse, could reopen a closed
    /// window.  The flow itself keeps serving.
    [[nodiscard]] AddOutcome add_packet(const PacketEvent& event);

    /// Largest in-flow backwards timestamp step tolerated before
    /// quarantine (absorbs benign reordering jitter at capture).
    static constexpr double kBackwardsTolerance = 1e-3;

    /// Release every flow whose window has closed at stream time `now`.
    /// Flows close in insertion order (the stream is time-sorted), so this
    /// is a FIFO scan, not a table sweep.
    [[nodiscard]] std::vector<ReadyFlow> pop_ready(double now);

    /// Release everything (end of stream).
    [[nodiscard]] std::vector<ReadyFlow> flush_all();

    /// Export every tracked flow in close-FIFO order for a durable
    /// snapshot.  Read-only; the table keeps serving.
    [[nodiscard]] std::vector<SnapshotFlow> snapshot_entries() const;

    /// Rebuild the table from snapshot_entries() output (restart path; the
    /// table must be empty).  Charges every restored flow against the
    /// MemBudget exactly like live admission; a flow the cap or budget
    /// refuses is skipped and counted in the return value — the caller
    /// accounts those as typed mem_budget sheds, so a *smaller* post-restart
    /// budget degrades instead of crashing.
    [[nodiscard]] std::size_t restore(const std::vector<SnapshotFlow>& flows);

    [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
    [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
    [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

    /// Accounted cost of one tracked packet / one tracked flow's fixed
    /// overhead (map node, LRU node, FIFO slot, Flow header).
    static constexpr std::size_t kPacketCost = sizeof(flow::Packet);
    static constexpr std::size_t kFlowOverhead = 256;

private:
    struct Entry {
        std::uint32_t label = 0;
        double first_ts = 0.0;
        std::chrono::steady_clock::time_point first_seen{};
        flow::Flow flow;
        util::Charge charge;
        std::list<std::uint64_t>::iterator lru_it;
    };

    /// Evict the least-recently-active flow other than `protect`.  Returns
    /// false when no evictable flow remains.
    bool evict_one(std::uint64_t protect);

    [[nodiscard]] ReadyFlow release(std::unordered_map<std::uint64_t, Entry>::iterator it);

    std::size_t max_bytes_;
    double window_;
    std::size_t bytes_ = 0;
    std::uint64_t evictions_ = 0;
    std::unordered_map<std::uint64_t, Entry> table_;
    std::list<std::uint64_t> lru_;           ///< front = least recently active
    std::deque<std::uint64_t> close_fifo_;   ///< insertion order = close order
};

} // namespace fptc::serve
