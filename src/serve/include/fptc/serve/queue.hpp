// Bounded producer/consumer queue for the serve pipeline stages.
//
// Both hand-offs in the streaming classifier — raw packet events into the
// assembler and window-closed flows into the classifier — run through this
// queue.  It is deliberately *bounded* and *non-blocking on the producer
// side*: a full queue makes try_push return false immediately, so overload
// surfaces as an explicit typed shed decision at the producer instead of
// unbounded memory growth or head-of-line blocking.  The consumer side
// blocks with a timeout so threads wind down promptly after close().
//
// Plain mutex + condition_variable: the payloads (PacketEvent, ReadyFlow)
// are orders of magnitude cheaper to move than a flowpic rasterization, so
// lock-free machinery would buy nothing measurable here and would cost the
// tsan-cleanliness the torture gate demands.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace fptc::serve {

template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Non-blocking push; false when the queue is full or closed.  The
    /// caller owns the shed decision for a refused item.
    [[nodiscard]] bool try_push(T value)
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_) {
                return false;
            }
            items_.push_back(std::move(value));
        }
        consumer_cv_.notify_one();
        return true;
    }

    /// Push that waits up to `timeout` for space (the end-of-stream flush
    /// path, where the consumer is known to be draining).  False when the
    /// queue stayed full for the whole timeout or was closed.
    [[nodiscard]] bool push_wait(T value, std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!producer_cv_.wait_for(lock, timeout, [this] {
                return closed_ || items_.size() < capacity_;
            })) {
            return false;
        }
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(value));
        lock.unlock();
        consumer_cv_.notify_one();
        return true;
    }

    /// Pop one item, waiting up to `timeout`.  nullopt on timeout, or
    /// immediately once the queue is closed and drained.
    [[nodiscard]] std::optional<T> pop(std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        consumer_cv_.wait_for(lock, timeout, [this] { return closed_ || !items_.empty(); });
        if (items_.empty()) {
            return std::nullopt;
        }
        T value = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        producer_cv_.notify_one();
        return value;
    }

    /// Move up to `max_items` into `out` (appended), waiting up to `timeout`
    /// for the first one.  Returns the number taken; 0 means timeout or
    /// closed-and-drained — disambiguate with closed().
    std::size_t drain(std::vector<T>& out, std::size_t max_items, std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        consumer_cv_.wait_for(lock, timeout, [this] { return closed_ || !items_.empty(); });
        std::size_t taken = 0;
        while (taken < max_items && !items_.empty()) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
            ++taken;
        }
        if (taken > 0) {
            lock.unlock();
            producer_cv_.notify_all();
        }
        return taken;
    }

    /// Close the queue: producers are refused from now on, consumers drain
    /// the remaining items and then see emptiness immediately.
    void close()
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        consumer_cv_.notify_all();
        producer_cv_.notify_all();
    }

    [[nodiscard]] bool closed() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable consumer_cv_;
    std::condition_variable producer_cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace fptc::serve
