// Live serve introspection: periodic atomic status-file export.
//
// A background thread renders a caller-supplied JSON snapshot (breaker
// state, drift alarms, SLO compliance, flows_active, model generation,
// stage-latency quantiles + exemplars — whatever the render callback
// bakes in) and publishes it with the temp + rename idiom, so a concurrent
// reader (`tools/fptc_servestat`, a curl loop, a human with cat) always
// sees a complete document and never a half-written one.  Plain writes, no
// fsync: the status file is a freshness artifact, not a durability one —
// losing the last second of status to a power cut costs nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace fptc::serve {

struct StatusWriterConfig {
    std::string path;       ///< FPTC_SERVE_STATUS ("" = disabled, writer inert)
    double period_s = 1.0;  ///< FPTC_SERVE_STATUS_S (clamped to >= 0.05)
};

/// Periodic atomic status export.  The render callback runs on the writer
/// thread and must be safe against the pipeline threads (read atomics /
/// registry instruments only).  stop() publishes one final snapshot so the
/// file always reflects the end state of the run.
class StatusWriter {
public:
    StatusWriter(StatusWriterConfig config, std::function<std::string()> render);
    ~StatusWriter();
    StatusWriter(const StatusWriter&) = delete;
    StatusWriter& operator=(const StatusWriter&) = delete;

    /// Join the writer thread after one final export.  Idempotent.
    void stop();

    [[nodiscard]] bool enabled() const noexcept { return !config_.path.empty(); }
    [[nodiscard]] std::uint64_t writes() const noexcept
    {
        return writes_.load(std::memory_order_relaxed);
    }

private:
    void write_once();

    StatusWriterConfig config_;
    std::function<std::string()> render_;
    std::atomic<std::uint64_t> writes_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool stopped_ = false;
    bool warned_ = false;
    std::thread thread_;
};

} // namespace fptc::serve
