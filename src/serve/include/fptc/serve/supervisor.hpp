// Serve worker supervision: crash containment for the streaming classifier.
//
// PR 6 made *campaign* shards crash-recoverable (journal + lease steal);
// this module does the same for the online serve pipeline.  With
// FPTC_SERVE_SUPERVISE=1 the serve binary forks into a two-process shape:
//
//   supervisor (parent) ── fork/exec /proc/self/exe ──> worker (child)
//        │  waitpid + heartbeat-file staleness              │
//        │                                                  ├ runs the
//        │  exit 0 ─────────── done, exit 0                 │ 3-thread
//        │  crash/hang exit ── restart w/ backoff           │ pipeline
//        │  heartbeat stale ── SIGKILL, then restart        │ + watchdog
//        │  SIGTERM/SIGINT ─── forward, wait, 128+sig       │ + snapshots
//
// The worker is this same binary re-executed (util::spawn_shard_worker,
// the PR 6 machinery) with FPTC_SERVE_ROLE=worker and its generation
// number in the environment.  Restart policy:
//
//   * exponential backoff: FPTC_SERVE_BACKOFF_MS × 2^(restart-1), capped —
//     a crash loop burns the budget slowly instead of fork-bombing;
//   * a crash-loop budget (FPTC_SERVE_MAX_RESTARTS): on the *last* allowed
//     restart the worker is degraded to GBT-only mode
//     (FPTC_SERVE_GBT_ONLY=1 clamps the breaker ladder to the fallback
//     tier) — if the CNN path is what keeps crashing, the cheap tier still
//     serves; only when that too dies does the supervisor give up and
//     propagate the worker's status;
//   * one-shot fault injections (FPTC_FAULT_KILL_SERVE,
//     FPTC_FAULT_SERVE_HANG) are unset for generations > 0, so an injected
//     crash is recovered from rather than replayed forever;
//   * a worker that exits 127 (exec failure) is not retried — restarting
//     cannot fix a bad binary.
//
// Liveness is watched two ways: waitpid catches death, and the heartbeat
// file the worker's watchdog refreshes every poll catches a worker so
// wedged that even its own watchdog thread is stuck — staleness past the
// budget draws a SIGKILL and the normal restart path takes over.
#pragma once

#include <cstdint>
#include <string>

namespace fptc::serve {

/// Environment variable that routes a re-exec'd child into the worker
/// branch of the serve binary's main().
inline constexpr const char* kServeRoleEnv = "FPTC_SERVE_ROLE";
inline constexpr const char* kServeRoleWorker = "worker";

/// Worker generation (0 = first launch), set by the supervisor.
inline constexpr const char* kServeGenerationEnv = "FPTC_SERVE_GENERATION";

struct SupervisorConfig {
    int max_restarts = 3;            ///< FPTC_SERVE_MAX_RESTARTS: respawns before giving up
    double backoff_ms = 200.0;       ///< FPTC_SERVE_BACKOFF_MS: base of the exponential backoff
    double backoff_cap_ms = 5000.0;  ///< ceiling on a single backoff sleep
    double heartbeat_stale_s = 20.0; ///< heartbeat file older than this => SIGKILL the worker
    std::string heartbeat_path;      ///< FPTC_SERVE_HEARTBEAT: liveness file shared with worker
    std::string snapshot_path;       ///< FPTC_SERVE_SNAPSHOT: scavenged + preserved across restarts
    std::string postmortem_path;     ///< FPTC_SERVE_POSTMORTEM: sealed from a signalled worker's rings
    std::string flightrec_ring;      ///< ring backing shared with worker (default <postmortem>.ring)

    /// Build from FPTC_SERVE_* environment (strict parsing — EnvError on
    /// malformed values, like every other knob).
    [[nodiscard]] static SupervisorConfig from_env();
};

/// Backoff before restart number `restart` (1-based): base × 2^(restart-1),
/// capped.  Pure — unit-tested directly.
[[nodiscard]] double backoff_delay_ms(const SupervisorConfig& config, int restart);

/// Run the supervision loop: spawn the worker, watch it, restart within
/// budget, degrade to GBT-only on the final attempt.  Returns the process
/// exit status: the final worker's exit code, or 128+signum when the
/// supervisor itself was told to shut down.  Must be called before this
/// process starts any threads (it forks).
[[nodiscard]] int run_supervisor(const SupervisorConfig& config);

/// True when this process is a supervisor-spawned worker.
[[nodiscard]] bool is_serve_worker();

/// This worker's generation (0 when unsupervised or first launch).
[[nodiscard]] std::uint32_t serve_generation();

} // namespace fptc::serve
