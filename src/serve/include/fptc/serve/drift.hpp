// Online distribution-shift detection for the streaming classifier.
//
// The serve pipeline is robust to *process* faults (crash, hang, overload);
// this module watches for *data* faults: traffic drifting away from what
// the backends were trained on, which silently degrades accuracy while
// every process-level invariant stays green (the paper's own script-vs-
// human partition is exactly such a shift).  Three signal families are
// monitored per classified flow:
//
//   * confidence  — the calibrated max-softmax score the open-set threshold
//                   also uses; drift shows up as a falling mean,
//   * input stats — mean packet size and packet count (the flowpic nnz
//                   proxy); drift in the *input* fires even when the model
//                   stays confidently wrong,
//   * prediction rates — a sliding class-histogram compared (L1) against a
//                   frozen reference window; a new app or imbalance shift
//                   bends the prediction mix before accuracy is observable.
//
// Scalar signals run through Page–Hinkley detectors: sequential, O(1),
// parameter-interpretable (delta = tolerated slack, lambda = alarm
// threshold on the cumulative deviation statistic).  Raw serve signals are
// high-variance class mixtures (packet sizes span orders of magnitude
// between classes), so each one is standardized online first: a Welford
// estimator learns mean/std during warmup, freezes, and the PH detector
// sees z-scores — delta and lambda are in sigma units, identical across
// signal families, and the delta drift bounds stationary excursions to
// ~1/(2·delta) sigma regardless of the raw scale.  Everything is driven
// by the observation counter — the "clock" is the sample index, injected by
// the caller simply by calling observe(), so unit tests script exact
// alarm-at-sample-N sequences with no wall clock and no RNG.
//
// Thread safety: none — owned and driven by the classifier thread only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace fptc::serve {

/// Page–Hinkley change detector over a scalar stream (two-sided).
struct PageHinkleyConfig {
    double delta = 0.005;          ///< tolerated per-sample drift (slack)
    double lambda = 5.0;           ///< alarm threshold on the PH statistic
    std::uint64_t min_samples = 32; ///< warmup before an alarm may fire
};

class PageHinkley {
public:
    explicit PageHinkley(const PageHinkleyConfig& config) : config_(config) {}

    /// Feed one observation; true when this sample raises an alarm.  After
    /// an alarm the detector re-baselines on the new regime (full reset),
    /// so a sustained shift raises one alarm, not one per sample.
    bool add(double x);

    /// Current statistic: max of the up/down cumulative deviations.
    [[nodiscard]] double statistic() const noexcept;
    [[nodiscard]] double mean() const noexcept { return samples_ > 0 ? mean_ : 0.0; }
    [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
    [[nodiscard]] std::uint64_t alarms() const noexcept { return alarms_; }

    void reset();

private:
    PageHinkleyConfig config_;
    std::uint64_t samples_ = 0;
    double mean_ = 0.0;
    double cum_up_ = 0.0;   ///< Σ (x - mean - delta), for upward shifts
    double min_up_ = 0.0;
    double cum_down_ = 0.0; ///< Σ (x - mean + delta), for downward shifts
    double max_down_ = 0.0;
    std::uint64_t alarms_ = 0;
};

/// Online Welford mean/variance used to standardize a raw signal before it
/// reaches Page–Hinkley.  Updated during warmup, then frozen so a regime
/// shift moves the z-scores instead of silently inflating the baseline.
struct Standardizer {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;

    void add(double x) noexcept
    {
        ++n;
        const double d = x - mean;
        mean += d / static_cast<double>(n);
        m2 += d * (x - mean);
    }

    [[nodiscard]] double stddev() const noexcept;

    /// z-score of x against the learned baseline (0 until two samples).
    [[nodiscard]] double z(double x) const noexcept;

    void reset() noexcept { *this = Standardizer{}; }
};

/// What the monitor watches and how sensitive it is.  `lambda == 0`
/// disables the whole monitor (the service's FPTC_SERVE_DRIFT_LAMBDA=0
/// default).  delta/lambda are in sigma units of the standardized signals.
struct DriftMonitorConfig {
    double lambda = 0.0;            ///< shared PH alarm threshold (0 = off)
    double delta = 0.05;            ///< shared PH slack (sigma units)
    std::uint64_t min_samples = 64; ///< shared PH warmup + standardizer freeze
    std::size_t num_classes = 5;
    std::size_t rate_window = 128;  ///< prediction-rate histogram window
    double rate_threshold = 0.0;    ///< L1 distance alarm threshold (0 = off)
};

/// One classified flow's observation.
struct DriftObservation {
    double confidence = 0.0;     ///< calibrated max-class score
    std::size_t predicted = 0;   ///< predicted class; num_classes = unknown
    double mean_packet_size = 0.0;
    std::size_t packet_count = 0; ///< flowpic nnz proxy
};

/// Alarm tallies by signal family, for the report and BENCH_serve.json.
struct DriftStats {
    std::uint64_t samples = 0;
    std::uint64_t alarms_confidence = 0;
    std::uint64_t alarms_input = 0;
    std::uint64_t alarms_rate = 0;
    std::uint64_t first_alarm_sample = 0; ///< 1-based; 0 = never alarmed
    double confidence_mean = 0.0;
    double size_mean = 0.0;

    [[nodiscard]] std::uint64_t total() const noexcept
    {
        return alarms_confidence + alarms_input + alarms_rate;
    }
};

class DriftMonitor {
public:
    explicit DriftMonitor(const DriftMonitorConfig& config);

    [[nodiscard]] bool enabled() const noexcept { return config_.lambda > 0.0; }

    /// Feed one classified flow; true when any detector alarms at this
    /// sample.  A disabled monitor observes nothing and never alarms.
    bool observe(const DriftObservation& observation);

    [[nodiscard]] const DriftStats& stats() const noexcept { return stats_; }

private:
    /// One standardized scalar channel: Welford warmup, frozen baseline,
    /// z-scored Page–Hinkley; an alarm re-learns both from scratch.
    struct ScalarDetector {
        Standardizer baseline;
        PageHinkley ph;
        std::uint64_t warmup;

        ScalarDetector(const PageHinkleyConfig& config, std::uint64_t warmup_samples)
            : ph(config), warmup(warmup_samples)
        {
        }

        bool add(double x);
    };

    [[nodiscard]] bool rate_shifted();

    DriftMonitorConfig config_;
    DriftStats stats_;
    ScalarDetector confidence_;
    ScalarDetector size_;
    ScalarDetector nnz_;
    std::vector<std::uint64_t> reference_hist_;  ///< frozen first-window histogram
    std::uint64_t reference_total_ = 0;
    std::vector<std::uint64_t> window_hist_;     ///< sliding current histogram
    std::deque<std::size_t> window_;             ///< predictions in the sliding window
};

} // namespace fptc::serve
