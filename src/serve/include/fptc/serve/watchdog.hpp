// In-worker watchdog for the serve pipeline threads.
//
// The supervisor (supervisor.hpp) can restart a worker that *dies*, but a
// worker that *wedges* — a pipeline thread stuck in a loop or blocked on
// something that will never complete — looks alive from outside: the
// process exists, the queues sit full, and nothing makes progress.  The
// watchdog closes that gap from inside: each pipeline thread (driver,
// assembler, classifier) registers a slot and stamps it with a relaxed
// monotonic timestamp every loop iteration; a background thread polls the
// stamps and, when any active slot goes stale past the stall budget,
// declares the FPTC_FAULT_SERVE_HANG fault class and self-terminates with
// kHangExitCode so the supervisor treats it exactly like a crash and
// restarts from the last snapshot.  `_exit` (not `exit`) is deliberate:
// a wedged pipeline cannot run an orderly teardown — destructors would
// block on the very queues that are stuck.
//
// The same poll loop refreshes the external heartbeat file the supervisor
// watches, so "worker wedged so hard even the watchdog thread is stuck"
// is also covered: the file goes stale and the supervisor SIGKILLs.
//
// Slots distinguish three states: active (stall-checked), idle (blocked on
// intentionally-unbounded waits, e.g. a closed-queue drain — not checked),
// and done (thread exited cleanly — never checked again).  Unit tests
// inject `on_stall` to observe detection without process death.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fptc::serve {

/// Worker exit code for a watchdog-detected pipeline stall; the supervisor
/// accounts it separately from crashes (kCrashExitCode) in its log line but
/// recovers identically.
inline constexpr int kHangExitCode = 88;

struct WatchdogConfig {
    double stall_seconds = 0.0;   ///< max silence per active slot; <= 0 disables stall checks
    double poll_seconds = 0.25;   ///< watchdog loop cadence
    std::string heartbeat_path;   ///< file refreshed every poll; empty = none
    /// Called (from the watchdog thread) with the stalled slot's name.
    /// Default action when empty: log + std::_Exit(kHangExitCode).
    std::function<void(const std::string&)> on_stall;
};

class Watchdog {
public:
    explicit Watchdog(WatchdogConfig config);
    ~Watchdog();

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Register a pipeline thread before start(); returns its slot index.
    [[nodiscard]] std::size_t add_thread(const std::string& name);

    /// Stamp "I made progress" — called every loop iteration; wait-free.
    void beat(std::size_t slot);

    /// Mark a slot idle (blocked on an intentionally long wait) or active.
    void set_idle(std::size_t slot, bool idle);

    /// Thread exited cleanly; the slot is never checked again.
    void mark_done(std::size_t slot);

    void start();
    void stop();

    [[nodiscard]] bool enabled() const noexcept
    {
        return config_.stall_seconds > 0.0 || !config_.heartbeat_path.empty();
    }

private:
    enum class SlotState : int { active = 0, idle = 1, done = 2 };

    struct Slot {
        std::string name;
        std::atomic<std::int64_t> last_beat_ns{0};
        std::atomic<int> state{static_cast<int>(SlotState::active)};
    };

    [[nodiscard]] static std::int64_t now_ns();
    void run();
    void touch_heartbeat() const;

    WatchdogConfig config_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
};

} // namespace fptc::serve
