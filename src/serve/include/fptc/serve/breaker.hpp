// Circuit breaker over the classification backends.
//
// The degradation ladder (cheapest first to recover into):
//
//   tier 0  full      — full-resolution flowpic CNN
//   tier 1  reduced   — reduced-resolution flowpic CNN (~4x cheaper rasterize
//                       + forward)
//   tier 2  fallback  — GBT over the 30-element early time-series (no
//                       rasterization, microsecond predict)
//   tier 3  shed      — classification suspended; flows are shed with the
//                       typed `breaker` reason
//
// Trip conditions (any): a batch deadline expiry (trips immediately — a
// stalled backend must not absorb a second batch), `failure_threshold`
// consecutive non-deadline failures, or rolling-window p99 latency above
// `p99_ms`.  Each trip moves one tier down the ladder and opens a cooldown;
// when the cooldown expires the breaker goes *half-open*: the next batch
// probes one tier up, and a successful probe recovers that tier (a failed
// probe re-opens the cooldown).  Trips and recoveries are counted so the
// torture gate can assert both happened.
//
// Thread safety: none — owned and driven by the classifier thread only.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace fptc::serve {

enum class Tier : int { full = 0, reduced = 1, fallback = 2, shed = 3 };

[[nodiscard]] constexpr const char* tier_name(Tier tier) noexcept
{
    switch (tier) {
    case Tier::full: return "full";
    case Tier::reduced: return "reduced";
    case Tier::fallback: return "fallback";
    case Tier::shed: return "shed";
    }
    return "?";
}

struct BreakerConfig {
    double p99_ms = 250.0;      ///< rolling p99 classify latency trip threshold
    int failure_threshold = 3;  ///< consecutive non-deadline failures to trip
    int cooldown_batches = 8;   ///< batches between a trip and the next probe
};

class CircuitBreaker {
public:
    explicit CircuitBreaker(const BreakerConfig& config);

    /// Tier to run the next batch at.  Ticks the cooldown; when it has
    /// expired at a degraded tier, returns the next tier *up* as a
    /// half-open probe (record_* resolves it).
    [[nodiscard]] Tier plan_batch();

    /// The batch completed in `latency_ms`.  Resolves a probe (recovery),
    /// feeds the latency window, and trips on a p99 breach.
    void record_success(double latency_ms);

    /// The batch failed.  `deadline` = the batch deadline expired (trips
    /// immediately); otherwise counts toward failure_threshold.
    void record_failure(bool deadline);

    /// A drift alarm fired: step one tier down the ladder (same mechanics
    /// as a latency trip, counted in trips()).  The cheaper tiers are less
    /// wrong to be wrong with while a reload candidate is canaried; the
    /// normal half-open probe path recovers once batches succeed again.
    void drift_trip() { trip(); }

    [[nodiscard]] Tier tier() const noexcept { return tier_; }
    [[nodiscard]] bool probing() const noexcept { return probing_; }
    [[nodiscard]] std::uint64_t trips() const noexcept { return trips_; }
    [[nodiscard]] std::uint64_t recoveries() const noexcept { return recoveries_; }

    static constexpr std::size_t kWindow = 64;     ///< latency ring size
    static constexpr std::size_t kMinSamples = 16; ///< p99 needs this many

private:
    void trip();
    [[nodiscard]] double window_p99() const;

    BreakerConfig config_;
    Tier tier_ = Tier::full;
    bool probing_ = false;
    int cooldown_ = 0;
    int consecutive_failures_ = 0;
    std::array<double, kWindow> window_{};
    std::size_t window_count_ = 0;  ///< samples since last trip (capped at kWindow)
    std::size_t window_pos_ = 0;
    std::uint64_t trips_ = 0;
    std::uint64_t recoveries_ = 0;
};

} // namespace fptc::serve
