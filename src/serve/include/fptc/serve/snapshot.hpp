// Durable flow-state snapshots for the streaming classifier.
//
// The serve worker's only irreplaceable state is soft: the rolling
// per-flow packet windows in the FlowTable plus the typed-accounting
// counters that make `flows_ingested == flows_classified + sheds` checkable.
// A crash (SIGKILL, watchdog self-termination, OOM) loses at most one
// snapshot period of it: the assembler periodically serializes the table
// and the counter cut into a versioned, CRC32-checksummed binary blob and
// publishes it through util::DurableFile (temp + fsync + rename + parent
// fsync), so a reader never observes a torn snapshot and a crash mid-write
// leaves only a scavengeable temp file.
//
// The snapshot is written at a *consistent cut*: the driver injects a
// marker into the ingest queue carrying its exact event watermark and
// driver-side counters; when the assembler dequeues the marker, every event
// before the watermark has been folded into the table (FIFO queue), so the
// assembler-side counters and table contents agree with the watermark
// exactly.  Classifier-side counters are sampled with relaxed loads and may
// lag — the restore-time deficit math tolerates that (see below).
//
// On restart the worker loads the snapshot (any validation failure —
// missing file, short file, unknown version, CRC mismatch, config
// fingerprint mismatch — is a *cold start*, never a crash), re-bases its
// counters on the snapshot cut, restores the table, skips the deterministic
// stream past the watermark and resumes.  The bounded loss window is the
// set of flows the snapshot says were ingested but are neither classified,
// shed, nor present in the restored table (they were in the ready queue or
// mid-batch at the cut): they are accounted as the typed `restart_loss`
// shed reason, which extends the accounting invariant across process
// generations.
#pragma once

#include "fptc/flow/packet.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fptc::serve {

/// Current snapshot format version.  A loader seeing any other value
/// treats the file as a cold start (forward/backward format changes must
/// bump this).  v2 added the open-set / drift / reload counters and the
/// model generation.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// One tracked flow's replayable state.
struct SnapshotFlow {
    std::uint64_t flow_id = 0;
    std::uint32_t label = 0;
    double first_ts = 0.0;
    std::vector<flow::Packet> packets;
};

/// The accounting cut persisted with the table.  Driver- and
/// assembler-side fields are exact at the watermark; classifier-side
/// fields are relaxed samples that may lag (only ever *under*-counting,
/// which the restart_loss deficit absorbs).
struct SnapshotCounters {
    std::uint64_t events_total = 0;
    std::uint64_t events_quarantined = 0;
    std::uint64_t events_dropped_queue = 0;
    std::uint64_t events_dropped_mem = 0;
    std::uint64_t events_dropped_slo = 0;
    std::uint64_t flows_ingested = 0;
    std::uint64_t flows_classified = 0;
    std::uint64_t flows_correct = 0;
    std::uint64_t shed_mem_budget = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t shed_breaker = 0;
    std::uint64_t shed_slo = 0;
    std::uint64_t shed_restart_loss = 0;
    std::uint64_t batches = 0;
    std::uint64_t slo_violations = 0;
    // v2: open-set rejection, backwards-timestamp quarantine, drift, reload.
    std::uint64_t flows_unknown = 0;
    std::uint64_t unknown_truth_total = 0;
    std::uint64_t unknown_truth_rejected = 0;
    std::uint64_t events_quarantined_backwards = 0;
    std::uint64_t drift_alarms = 0;
    std::uint64_t reloads = 0;
    std::uint64_t reload_rollbacks = 0;

    /// Flow-level sheds recorded at the cut (restart_loss included).
    [[nodiscard]] std::uint64_t flow_sheds() const noexcept
    {
        return shed_mem_budget + shed_queue_full + shed_deadline + shed_breaker + shed_slo +
               shed_restart_loss;
    }
};

/// Everything a restarted worker needs to resume.
struct ServeSnapshot {
    std::uint64_t watermark = 0;      ///< stream events the driver had emitted at the cut
    double stream_now = 0.0;          ///< assembler stream clock at the cut
    std::uint32_t generation = 0;     ///< worker generation that wrote the snapshot
    std::uint32_t model_generation = 0; ///< accepted hot reloads at the cut
    std::uint64_t config_fingerprint = 0;  ///< serve config hash; mismatch = cold start
    SnapshotCounters counters;
    std::vector<SnapshotFlow> flows;  ///< in window-close (FIFO) order
};

/// Serialize to the on-disk byte string (magic + version + payload + CRC32).
[[nodiscard]] std::string encode_snapshot(const ServeSnapshot& snapshot);

/// Parse an on-disk byte string.  Any malformation — bad magic, unknown
/// version, truncation, trailing garbage, CRC mismatch — returns nullopt
/// (the caller cold-starts); this function never throws on bad input.
[[nodiscard]] std::optional<ServeSnapshot> decode_snapshot(std::string_view data);

/// Durably replace `path` with the encoded snapshot (DurableFile:
/// temp + fsync + rename + parent fsync).  Propagates util::IoError.
void save_snapshot(const std::string& path, const ServeSnapshot& snapshot);

/// Load and validate `path`.  A missing, unreadable or invalid file is a
/// cold start (nullopt), never an error.  When `expect_fingerprint` is
/// nonzero a snapshot with a different config fingerprint is rejected too.
[[nodiscard]] std::optional<ServeSnapshot> load_snapshot(const std::string& path,
                                                         std::uint64_t expect_fingerprint = 0);

} // namespace fptc::serve
