// Interleaved packet-event stream driven by the trafficgen models.
//
// Materializes a deterministic stream of PacketEvents for many concurrent
// flows: each flow is sampled from a ucdavis19 class profile, offset by a
// uniform start time within the arrival window, and all packets are merged
// into one globally time-sorted event sequence — the input shape a capture
// tap would deliver.  The stream is also where two serve fault classes act
// (they corrupt the *input*, not the service):
//
//   * FPTC_FAULT_SERVE_MANGLE_PACKETS=p  — ~p% of events leave here mangled
//     (NaN/negative timestamps, out-of-range sizes); the service's ingest
//     validation must quarantine every one (mangled() is the test oracle).
//   * FPTC_FAULT_SERVE_BURST=k — every 64th event erupts into k extra
//     same-timestamp clones, a synthetic microburst that drives the bounded
//     ingest queue into its queue_full shed path.
// A DriftSchedule (trafficgen/drift.hpp) makes the stream non-stationary on
// a scripted, seed-deterministic schedule: class profiles blend toward
// their human-partition variants, unknown-class flows (ground-truth label
// = num_classes) are injected, and the class mix can skew — the inputs the
// serve drift monitor and open-set threshold are tortured against.  An
// inactive schedule leaves the stream bit-identical to one built without
// it.
#pragma once

#include "fptc/serve/event.hpp"

#include "fptc/trafficgen/drift.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace fptc::serve {

/// Stream shape.  Defaults give a few-second single-process replay.
struct StreamConfig {
    std::size_t flows = 200;         ///< concurrent flows to interleave
    std::size_t num_classes = 5;     ///< ucdavis19 classes, round-robin
    double arrival_window = 30.0;    ///< flow start times ~ U[0, arrival_window)
    std::uint64_t seed = 1;          ///< generator seed (stream is deterministic)
    bool human_shift = false;        ///< use the human-partition profiles
    trafficgen::DriftSchedule drift; ///< scripted non-stationarity (FPTC_DRIFT_*)
};

class InterleavedStream {
public:
    explicit InterleavedStream(const StreamConfig& config);

    /// Next event in global time order (plus any injected burst clones),
    /// or nullopt at end of stream.
    [[nodiscard]] std::optional<PacketEvent> next();

    /// Events handed out so far (burst clones included).
    [[nodiscard]] std::uint64_t events_emitted() const noexcept { return emitted_; }

    /// Events corrupted by the mangle fault class — the quarantine oracle:
    /// the service must report exactly this many quarantined events.
    [[nodiscard]] std::uint64_t mangled() const noexcept { return mangled_; }

    /// Burst clones injected by the burst fault class.
    [[nodiscard]] std::uint64_t burst_events() const noexcept { return burst_events_; }

    /// Flows materialized into the stream.
    [[nodiscard]] std::size_t flow_count() const noexcept { return flow_count_; }

    /// Flows injected from outside the trained classes (label =
    /// num_classes) — the open-set oracle for the unknown-flood gate.
    [[nodiscard]] std::size_t unknown_flows() const noexcept { return unknown_flows_; }

    /// Total events in the base stream (before faults).
    [[nodiscard]] std::size_t base_events() const noexcept { return events_.size(); }

private:
    std::vector<PacketEvent> events_;  ///< time-sorted base stream
    std::size_t cursor_ = 0;
    int pending_burst_ = 0;            ///< clones of events_[cursor_-1] still owed
    std::uint64_t emitted_ = 0;
    std::uint64_t mangled_ = 0;
    std::uint64_t burst_events_ = 0;
    std::size_t flow_count_ = 0;
    std::size_t unknown_flows_ = 0;
    std::uint64_t mangle_rng_state_ = 0;  ///< cheap per-event corruption selector
};

} // namespace fptc::serve
