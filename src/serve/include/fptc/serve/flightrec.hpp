// Serve flight recorder: per-flow lifecycle events, stage-latency
// exemplars, and crash postmortems.
//
// The serve pipeline already *counts* everything (fptc_serve_* metrics) —
// this module records *which flow* did what, *when*.  Three per-stage
// overwrite-oldest rings (driver / assembler / classifier, one producer
// thread each — the PR 5 trace-ring shape) hold compact 32-byte binary
// events: ingest, quarantine, admit, CoDel drop, window close, batch
// enqueue, classify start/end with backend tier, shed with typed reason,
// unknown-route, snapshot-marker.  Events are keyed by flow id and carry a
// kind-specific argument (queue-sojourn ns, batch latency ns, snapshot
// watermark).
//
// Crash survivability.  The rings live in a little mmap(MAP_SHARED) file
// (FPTC_SERVE_FLIGHTREC_RING): stores land in the page cache, so they
// survive the *process* dying — including SIGKILL, which runs no handlers.
// The supervisor reaps a signalled worker, reads the ring file, and seals a
// CRC-checked postmortem (encode/decode below, via DurableFile) stamped
// with the worker generation.  In-process crash paths that do get a chance
// to run (watchdog hang-exit, breaker hard-trip) dump the postmortem
// directly, with a live metrics snapshot attached.  When the ring path is
// empty the rings fall back to private heap memory: fully functional for
// tests and in-process dumps, just not SIGKILL-durable.
//
// Cost model.  Disabled (FPTC_SERVE_FLIGHTREC=0, no recorder installed):
// frec_note() is one inlined relaxed atomic load and a predictable branch —
// the same contract as the disabled TraceSpan, gated <= 2% by the
// BM_FlightRecDisabled / BM_FlightRecEnabled micro-benchmark pair.
// Enabled: one steady_clock read plus four relaxed atomic stores into the
// mapped slot and one release store of the ring head.  No locks, no
// allocation, no syscalls on the hot path.
//
// Thread safety: each ring has exactly one producer (its pipeline thread).
// Readers (status export, postmortem dump, tests) snapshot concurrently:
// slot words and heads are accessed through std::atomic_ref, so torn reads
// are impossible and tsan stays quiet; a reader may observe a window that
// is a few events stale, which is fine for a diagnostic artifact.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fptc::serve {

// ---------------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------------

/// One ring per pipeline stage; the producer thread owns its ring.
enum class FrecRing : std::uint32_t {
    driver = 0,      ///< stream pump (the caller's thread)
    assembler = 1,   ///< validate + flow table + window close
    classifier = 2,  ///< batching, breaker, backend
};
inline constexpr std::size_t kFrecRingCount = 3;
[[nodiscard]] const char* frec_ring_name(std::uint32_t ring) noexcept;

/// What happened to a flow (or event) at this point of its lifecycle.
/// `arg` and `detail` carry the kind-specific payload noted per value.
enum class FrecKind : std::uint32_t {
    ingest = 1,       ///< event entered the ingest queue (arg = events_total)
    quarantine = 2,   ///< event failed validation (detail = 1 backwards-ts)
    admit = 3,        ///< new flow admitted to the table (arg = table size)
    codel_drop = 4,   ///< CoDel dropped the event at ingest (arg = sojourn ns)
    window_close = 5, ///< flow's window closed (arg = assembly ns)
    batch_enqueue = 6,///< flow entered the ready queue (arg = queue depth)
    classify_start = 7, ///< batch handed to a backend (arg = batch size, detail = tier)
    classify_end = 8, ///< batch returned (arg = latency ns, detail = tier)
    shed = 9,         ///< flow shed (arg = count, detail = FrecShed reason)
    unknown_route = 10, ///< open-set rejection routed the flow to `unknown`
    snapshot_marker = 11, ///< snapshot committed (arg = watermark)
};
[[nodiscard]] const char* frec_kind_name(std::uint32_t kind) noexcept;

/// Typed shed reason carried in `detail` of a FrecKind::shed event —
/// mirrors the fptc_serve_shed_*_total counter taxonomy.
enum class FrecShed : std::uint32_t {
    mem_budget = 1,
    queue_full = 2,
    deadline = 3,
    breaker = 4,
    slo = 5,
};
[[nodiscard]] const char* frec_shed_name(std::uint32_t reason) noexcept;

/// One recorded lifecycle event.  32 bytes; stored in the ring as four
/// 64-bit words (kind and detail share the last word).
struct FlightEvent {
    std::uint64_t ts_ns = 0;    ///< steady-clock ns since recorder init
    std::uint64_t flow_id = 0;  ///< 0 for flow-less events (markers, batches)
    std::uint64_t arg = 0;      ///< kind-specific payload (see FrecKind)
    std::uint32_t kind = 0;     ///< FrecKind
    std::uint32_t detail = 0;   ///< kind-specific discriminator (tier, reason)
};

// ---------------------------------------------------------------------------
// Stage-latency attribution
// ---------------------------------------------------------------------------

/// The classify-latency decomposition: where a flow's wall time went.
/// Each stage has a registry histogram (frec_stage_metric_name) observed by
/// the pipeline unconditionally, plus a per-bucket last-flow-id exemplar
/// table maintained by the recorder so a p99 spike names a concrete flow.
enum class FrecStage : std::uint32_t {
    ingest_wait = 0,     ///< event enqueue -> assembler dequeue
    assembly = 1,        ///< first packet seen -> window close
    ready_wait = 2,      ///< ready enqueue -> classifier dequeue
    backend_compute = 3, ///< backend classify call (== classify latency)
};
inline constexpr std::size_t kFrecStageCount = 4;
inline constexpr std::size_t kFrecBuckets = 65;  ///< util::Histogram::kBuckets
[[nodiscard]] const char* frec_stage_name(std::uint32_t stage) noexcept;
[[nodiscard]] const char* frec_stage_metric_name(FrecStage stage) noexcept;

/// The log2 bucket a value lands in — identical to util::Histogram's
/// bucketing (bucket 0 collects exactly 0, bucket b collects bit width b),
/// so exemplars align with histogram quantiles.
[[nodiscard]] std::size_t frec_bucket(std::uint64_t value) noexcept;

// ---------------------------------------------------------------------------
// Postmortem
// ---------------------------------------------------------------------------

/// Why a postmortem was written.
enum class PostmortemReason : std::uint32_t {
    watchdog_stall = 1,    ///< watchdog hang-exit (in-process dump)
    breaker_hard_trip = 2, ///< breaker ladder hit the shed tier
    sigkill_reap = 3,      ///< supervisor sealed a signalled worker's rings
    manual = 4,            ///< explicit dump (tests, tooling)
};
[[nodiscard]] const char* postmortem_reason_name(std::uint32_t reason) noexcept;

inline constexpr std::uint32_t kPostmortemVersion = 1;

/// A decoded postmortem: the last-window rings, the stage exemplar tables,
/// and (for in-process dumps) a Prometheus-text metrics snapshot.
struct Postmortem {
    std::uint32_t reason = 0;      ///< PostmortemReason
    std::uint32_t generation = 0;  ///< worker generation (supervisor-stamped)
    std::string detail;            ///< free text (stalled thread, signal)

    struct RingDump {
        std::uint32_t ring = 0;       ///< FrecRing
        std::uint64_t recorded = 0;   ///< events ever recorded (ring head)
        std::uint64_t dropped = 0;    ///< overwritten by wrap-around
        std::vector<FlightEvent> events;  ///< surviving window, oldest first
    };
    std::vector<RingDump> rings;

    struct Exemplar {
        std::uint32_t stage = 0;   ///< FrecStage
        std::uint32_t bucket = 0;  ///< histogram bucket index
        std::uint64_t flow_id = 0; ///< last flow observed in that bucket
    };
    std::vector<Exemplar> exemplars;

    std::string metrics_text;  ///< prometheus snapshot ("" when sealed post-SIGKILL)

    /// Highest-timestamp snapshot_marker argument across all rings — the
    /// watermark of the last snapshot the dead worker committed.  nullopt
    /// when no marker survived the window.
    [[nodiscard]] std::optional<std::uint64_t> last_watermark() const;

    /// Total surviving events across rings.
    [[nodiscard]] std::uint64_t event_count() const noexcept;
};

/// CRC-checked binary codec (same magic/version/payload/CRC shape as the
/// serve snapshot): decode returns nullopt on any structural defect —
/// short file, bad magic, version skew, CRC mismatch, trailing garbage.
[[nodiscard]] std::string encode_postmortem(const Postmortem& postmortem);
[[nodiscard]] std::optional<Postmortem> decode_postmortem(std::string_view bytes);

/// Durable write via DurableFile (temp + fsync + rename).  Returns false —
/// never throws — on I/O failure: a crash path must not crash harder.
bool save_postmortem(const std::string& path, const Postmortem& postmortem);
[[nodiscard]] std::optional<Postmortem> load_postmortem(const std::string& path);

// ---------------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------------

struct FrecConfig {
    std::string ring_path;           ///< mmap backing file ("" = private memory)
    std::size_t ring_capacity = 4096; ///< events per ring (clamped to [64, 1M])
    std::uint32_t generation = 0;    ///< stamped into the ring file header
};

namespace frec_detail {
/// 0 = no recorder installed (fast inert path), 1 = recorder armed.
extern std::atomic<int> gate;
void note_slow(FrecRing ring, FrecKind kind, std::uint64_t flow_id, std::uint64_t arg,
               std::uint32_t detail) noexcept;
void exemplar_slow(FrecStage stage, std::uint64_t value, std::uint64_t flow_id) noexcept;
} // namespace frec_detail

/// Record one lifecycle event on `ring`.  Inert (one relaxed load + branch)
/// when no recorder is installed.
inline void frec_note(FrecRing ring, FrecKind kind, std::uint64_t flow_id,
                      std::uint64_t arg = 0, std::uint32_t detail = 0) noexcept
{
    if (frec_detail::gate.load(std::memory_order_relaxed) != 1) {
        return;
    }
    frec_detail::note_slow(ring, kind, flow_id, arg, detail);
}

/// Update the stage exemplar table: remember `flow_id` as the last flow
/// whose `value` landed in its histogram bucket.  Inert when disabled.
inline void frec_exemplar(FrecStage stage, std::uint64_t value, std::uint64_t flow_id) noexcept
{
    if (frec_detail::gate.load(std::memory_order_relaxed) != 1) {
        return;
    }
    frec_detail::exemplar_slow(stage, value, flow_id);
}

/// The flight recorder.  Constructing one installs it as the process-wide
/// recorder and opens the frec_note gate; destruction closes the gate.  At
/// most one instance may exist at a time, and it must outlive every thread
/// that calls frec_note (the serve run joins its pipeline threads before
/// the recorder leaves scope).
class FlightRecorder {
public:
    explicit FlightRecorder(const FrecConfig& config);
    ~FlightRecorder();
    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// True when the ring storage is an mmap'd file (SIGKILL-durable);
    /// false for the private-memory fallback.
    [[nodiscard]] bool file_backed() const noexcept { return mapped_; }

    void note(FrecRing ring, FrecKind kind, std::uint64_t flow_id, std::uint64_t arg,
              std::uint32_t detail) noexcept;
    void observe_exemplar(FrecStage stage, std::uint64_t value,
                          std::uint64_t flow_id) noexcept;

    /// Last-window snapshot of one ring, oldest first.
    [[nodiscard]] std::vector<FlightEvent> ring_snapshot(FrecRing ring) const;
    [[nodiscard]] std::uint64_t recorded(FrecRing ring) const noexcept;
    [[nodiscard]] std::uint64_t dropped(FrecRing ring) const noexcept;
    [[nodiscard]] std::uint64_t recorded_total() const noexcept;
    [[nodiscard]] std::uint64_t dropped_total() const noexcept;
    [[nodiscard]] std::uint64_t exemplar(FrecStage stage, std::size_t bucket) const noexcept;

    /// Assemble a postmortem from the live rings + exemplar tables.
    [[nodiscard]] Postmortem build_postmortem(PostmortemReason reason, std::string detail,
                                              std::string metrics_text) const;

    /// build + attach the registry's Prometheus snapshot + save.  The
    /// in-process crash-path dump (watchdog stall, breaker hard-trip).
    bool dump(const std::string& path, PostmortemReason reason, std::string detail) const;

    /// Unlink the ring backing file (clean shutdown: a leftover ring would
    /// make a later seal describe a run that finished fine).
    void remove_backing() noexcept;

    [[nodiscard]] const FrecConfig& config() const noexcept { return config_; }

    /// Parse a ring file left behind by a dead worker into a postmortem
    /// skeleton (rings + exemplars; no metrics).  nullopt on bad magic /
    /// version / size.
    [[nodiscard]] static std::optional<Postmortem> read_ring_file(const std::string& ring_path);

    /// Supervisor-side seal: read the dead worker's ring file, stamp reason
    /// + generation + detail, and durably write the postmortem.  False when
    /// the ring file is missing/corrupt or the write fails.
    static bool seal_from_ring_file(const std::string& ring_path, const std::string& out_path,
                                    PostmortemReason reason, std::uint32_t generation,
                                    std::string detail);

private:
    [[nodiscard]] std::uint64_t* ring_head(std::size_t ring) const noexcept;
    [[nodiscard]] std::uint64_t* ring_slots(std::size_t ring) const noexcept;
    [[nodiscard]] std::uint64_t* exemplar_slot(std::size_t stage,
                                               std::size_t bucket) const noexcept;

    FrecConfig config_;
    std::uint64_t* base_ = nullptr;  ///< whole region, u64 words
    std::size_t words_ = 0;
    bool mapped_ = false;            ///< true: munmap; false: delete[]
    std::uint64_t epoch_ns_ = 0;     ///< steady ns at construction
};

} // namespace fptc::serve
