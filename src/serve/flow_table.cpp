#include "fptc/serve/flow_table.hpp"

#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <utility>

namespace fptc::serve {

FlowTable::FlowTable(std::size_t max_bytes, double window_seconds)
    : max_bytes_(std::max<std::size_t>(max_bytes, kFlowOverhead + kPacketCost)),
      window_(window_seconds)
{
}

bool FlowTable::evict_one(std::uint64_t protect)
{
    FPTC_TRACE_SPAN("serve_flow_evict");
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (*it == protect) {
            continue;
        }
        const auto entry = table_.find(*it);
        bytes_ -= std::min(bytes_, entry->second.charge.bytes());
        lru_.erase(it);
        table_.erase(entry);  // Charge destructor credits the MemBudget
        ++evictions_;
        return true;
    }
    return false;
}

AddOutcome FlowTable::add_packet(const PacketEvent& event)
{
    AddOutcome outcome;
    auto it = table_.find(event.flow_id);

    if (it == table_.end()) {
        // Admit a new flow: its fixed overhead plus the first packet.
        FPTC_TRACE_SPAN("serve_flow_insert");
        const std::size_t cost = kFlowOverhead + kPacketCost;
        while (bytes_ + cost > max_bytes_ && evict_one(event.flow_id)) {
            ++outcome.evicted;
        }
        if (bytes_ + cost > max_bytes_) {
            return outcome;  // not admitted: the cap is smaller than one flow
        }
        Entry entry;
        entry.label = event.label;
        entry.first_ts = event.timestamp;
        entry.first_seen = std::chrono::steady_clock::now();
        for (int attempt = 0;; ++attempt) {
            try {
                entry.charge = util::Charge(cost, "serve_flow");
                break;
            } catch (const util::BudgetExceeded&) {
                if (attempt > 0 || !evict_one(event.flow_id)) {
                    return outcome;  // process budget refuses even after eviction
                }
                ++outcome.evicted;
            }
        }
        entry.flow.label = event.label;
        entry.flow.packets.push_back(flow::Packet{
            .timestamp = event.timestamp,
            .size = static_cast<int>(event.size),
            .direction = event.direction,
            .is_ack = false,
        });
        lru_.push_back(event.flow_id);
        entry.lru_it = std::prev(lru_.end());
        bytes_ += cost;
        close_fifo_.push_back(event.flow_id);
        table_.emplace(event.flow_id, std::move(entry));
        outcome.admitted = true;
        outcome.new_flow = true;
        return outcome;
    }

    // Grow an existing flow by one packet; evict colder flows when the
    // table cap or the process budget pushes back, and as a last resort
    // shed this flow itself (it stays a *typed* drop, never silent).
    Entry& entry = it->second;
    if (!entry.flow.packets.empty() &&
        event.timestamp < entry.flow.packets.back().timestamp - kBackwardsTolerance) {
        outcome.quarantined_backwards = true;
        return outcome;
    }
    while (bytes_ + kPacketCost > max_bytes_ && evict_one(event.flow_id)) {
        ++outcome.evicted;
    }
    if (bytes_ + kPacketCost > max_bytes_) {
        bytes_ -= std::min(bytes_, entry.charge.bytes());
        lru_.erase(entry.lru_it);
        table_.erase(it);
        outcome.shed_self = true;
        return outcome;
    }
    for (int attempt = 0;; ++attempt) {
        try {
            entry.charge.grow(kPacketCost);
            break;
        } catch (const util::BudgetExceeded&) {
            if (attempt > 0 || !evict_one(event.flow_id)) {
                bytes_ -= std::min(bytes_, entry.charge.bytes());
                lru_.erase(entry.lru_it);
                table_.erase(it);
                outcome.shed_self = true;
                return outcome;
            }
            ++outcome.evicted;
        }
    }
    entry.flow.packets.push_back(flow::Packet{
        .timestamp = event.timestamp,
        .size = static_cast<int>(event.size),
        .direction = event.direction,
        .is_ack = false,
    });
    bytes_ += kPacketCost;
    lru_.splice(lru_.end(), lru_, entry.lru_it);  // touch: most recently active
    outcome.admitted = true;
    return outcome;
}

ReadyFlow FlowTable::release(std::unordered_map<std::uint64_t, Entry>::iterator it)
{
    Entry& entry = it->second;
    ReadyFlow ready{
        .flow_id = it->first,
        .label = entry.label,
        .first_ts = entry.first_ts,
        .first_seen = entry.first_seen,
        .flow = std::move(entry.flow),
        .charge = std::move(entry.charge),
    };
    bytes_ -= std::min(bytes_, ready.charge.bytes());
    lru_.erase(entry.lru_it);
    table_.erase(it);
    return ready;
}

std::vector<ReadyFlow> FlowTable::pop_ready(double now)
{
    std::vector<ReadyFlow> ready;
    while (!close_fifo_.empty()) {
        const auto it = table_.find(close_fifo_.front());
        if (it == table_.end()) {
            close_fifo_.pop_front();  // already evicted
            continue;
        }
        if (it->second.first_ts + window_ > now) {
            break;  // FIFO: nothing behind this one has closed either
        }
        ready.push_back(release(it));
        close_fifo_.pop_front();
    }
    return ready;
}

std::vector<SnapshotFlow> FlowTable::snapshot_entries() const
{
    std::vector<SnapshotFlow> flows;
    flows.reserve(table_.size());
    for (const auto flow_id : close_fifo_) {
        const auto it = table_.find(flow_id);
        if (it == table_.end()) {
            continue;  // evicted; its FIFO slot is a tombstone
        }
        flows.push_back(SnapshotFlow{
            .flow_id = flow_id,
            .label = it->second.label,
            .first_ts = it->second.first_ts,
            .packets = it->second.flow.packets,
        });
    }
    return flows;
}

std::size_t FlowTable::restore(const std::vector<SnapshotFlow>& flows)
{
    FPTC_TRACE_SPAN("serve_table_restore");
    const auto restored_at = std::chrono::steady_clock::now();
    std::size_t refused = 0;
    for (const auto& snap : flows) {
        const std::size_t cost = kFlowOverhead + snap.packets.size() * kPacketCost;
        // No LRU eviction here: every restored flow is equally old, so
        // evicting one to admit another is pure churn — refusal is the
        // honest outcome when the post-restart cap is smaller.
        if (bytes_ + cost > max_bytes_) {
            ++refused;
            continue;
        }
        Entry entry;
        try {
            entry.charge = util::Charge(cost, "serve_flow");
        } catch (const util::BudgetExceeded&) {
            ++refused;
            continue;
        }
        entry.label = snap.label;
        entry.first_ts = snap.first_ts;
        entry.first_seen = restored_at;
        entry.flow.label = snap.label;
        entry.flow.packets = snap.packets;
        lru_.push_back(snap.flow_id);
        entry.lru_it = std::prev(lru_.end());
        bytes_ += cost;
        close_fifo_.push_back(snap.flow_id);
        table_.emplace(snap.flow_id, std::move(entry));
    }
    return refused;
}

std::vector<ReadyFlow> FlowTable::flush_all()
{
    std::vector<ReadyFlow> ready;
    while (!close_fifo_.empty()) {
        const auto it = table_.find(close_fifo_.front());
        if (it != table_.end()) {
            ready.push_back(release(it));
        }
        close_fifo_.pop_front();
    }
    return ready;
}

} // namespace fptc::serve
