#include "fptc/serve/breaker.hpp"

#include <algorithm>
#include <vector>

namespace fptc::serve {

CircuitBreaker::CircuitBreaker(const BreakerConfig& config) : config_(config)
{
    config_.failure_threshold = std::max(1, config_.failure_threshold);
    config_.cooldown_batches = std::max(1, config_.cooldown_batches);
}

Tier CircuitBreaker::plan_batch()
{
    if (tier_ != Tier::full && cooldown_ <= 0) {
        probing_ = true;
        return static_cast<Tier>(static_cast<int>(tier_) - 1);
    }
    if (cooldown_ > 0) {
        --cooldown_;
    }
    return tier_;
}

void CircuitBreaker::trip()
{
    if (tier_ != Tier::shed) {
        tier_ = static_cast<Tier>(static_cast<int>(tier_) + 1);
        ++trips_;
    }
    cooldown_ = config_.cooldown_batches;
    consecutive_failures_ = 0;
    window_count_ = 0;
    window_pos_ = 0;
}

double CircuitBreaker::window_p99() const
{
    std::vector<double> sorted(window_.begin(), window_.begin() + window_count_);
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rank =
        std::min(sorted.size() - 1,
                 static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size())));
    return sorted[rank];
}

void CircuitBreaker::record_success(double latency_ms)
{
    if (probing_) {
        // Half-open probe succeeded: recover one tier and hold it for a
        // cooldown before probing further up.
        probing_ = false;
        tier_ = static_cast<Tier>(static_cast<int>(tier_) - 1);
        ++recoveries_;
        cooldown_ = config_.cooldown_batches;
        consecutive_failures_ = 0;
        window_count_ = 0;
        window_pos_ = 0;
        return;
    }
    consecutive_failures_ = 0;
    window_[window_pos_] = latency_ms;
    window_pos_ = (window_pos_ + 1) % kWindow;
    window_count_ = std::min(window_count_ + 1, kWindow);
    if (window_count_ >= kMinSamples && window_p99() > config_.p99_ms) {
        trip();
    }
}

void CircuitBreaker::record_failure(bool deadline)
{
    if (probing_) {
        // Probe failed: stay at the degraded tier, re-open the cooldown.
        probing_ = false;
        cooldown_ = config_.cooldown_batches;
        return;
    }
    ++consecutive_failures_;
    if (deadline || consecutive_failures_ >= config_.failure_threshold) {
        trip();
    }
}

} // namespace fptc::serve
