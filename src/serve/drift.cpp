#include "fptc/serve/drift.hpp"

#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace fptc::serve {

bool PageHinkley::add(double x)
{
    ++samples_;
    // Running mean first, then cumulative deviations against it — the
    // classic PH recursion (Page 1954, Hinkley 1971).
    mean_ += (x - mean_) / static_cast<double>(samples_);
    cum_up_ += x - mean_ - config_.delta;
    min_up_ = std::min(min_up_, cum_up_);
    cum_down_ += x - mean_ + config_.delta;
    max_down_ = std::max(max_down_, cum_down_);
    if (samples_ < config_.min_samples) {
        return false;
    }
    if (statistic() > config_.lambda) {
        ++alarms_;
        const std::uint64_t alarms = alarms_;
        reset();
        alarms_ = alarms;
        return true;
    }
    return false;
}

double PageHinkley::statistic() const noexcept
{
    return std::max(cum_up_ - min_up_, max_down_ - cum_down_);
}

void PageHinkley::reset()
{
    samples_ = 0;
    mean_ = 0.0;
    cum_up_ = 0.0;
    min_up_ = 0.0;
    cum_down_ = 0.0;
    max_down_ = 0.0;
    alarms_ = 0;
}

double Standardizer::stddev() const noexcept
{
    if (n < 2) {
        return 0.0;
    }
    return std::sqrt(std::max(m2 / static_cast<double>(n - 1), 0.0));
}

double Standardizer::z(double x) const noexcept
{
    if (n < 2) {
        return 0.0;
    }
    // A near-constant warmup signal still standardizes: any later change is
    // then a huge z-score, which is exactly the right verdict.
    const double sd = std::max(stddev(), 1e-9);
    return (x - mean) / sd;
}

namespace {

PageHinkleyConfig scalar_config(const DriftMonitorConfig& config)
{
    // All channels see z-scores, so one sigma-unit delta/lambda pair
    // governs every detector regardless of the raw signal's scale.
    PageHinkleyConfig ph;
    ph.delta = config.delta;
    ph.lambda = config.lambda;
    ph.min_samples = config.min_samples;
    return ph;
}

} // namespace

bool DriftMonitor::ScalarDetector::add(double x)
{
    // Learn the baseline during warmup, then freeze it: a regime shift must
    // move the z-scores, not quietly inflate the baseline variance.
    if (baseline.n < warmup) {
        baseline.add(x);
    }
    if (ph.add(baseline.z(x))) {
        // Re-learn the post-shift regime from scratch so a sustained shift
        // alarms once and the next shift is judged against the new normal.
        baseline.reset();
        return true;
    }
    return false;
}

DriftMonitor::DriftMonitor(const DriftMonitorConfig& config)
    : config_(config),
      confidence_(scalar_config(config), config.min_samples),
      size_(scalar_config(config), config.min_samples),
      nnz_(scalar_config(config), config.min_samples),
      reference_hist_(config.num_classes + 1, 0),
      window_hist_(config.num_classes + 1, 0)
{
}

bool DriftMonitor::observe(const DriftObservation& observation)
{
    if (!enabled()) {
        return false;
    }
    FPTC_TRACE_SPAN("serve_drift_update");
    ++stats_.samples;
    const double n = static_cast<double>(stats_.samples);
    stats_.confidence_mean += (observation.confidence - stats_.confidence_mean) / n;
    stats_.size_mean += (observation.mean_packet_size - stats_.size_mean) / n;

    bool alarm = false;
    if (confidence_.add(observation.confidence)) {
        ++stats_.alarms_confidence;
        alarm = true;
    }
    if (size_.add(observation.mean_packet_size)) {
        ++stats_.alarms_input;
        alarm = true;
    }
    if (nnz_.add(static_cast<double>(observation.packet_count))) {
        ++stats_.alarms_input;
        alarm = true;
    }

    if (config_.rate_threshold > 0.0 && config_.rate_window > 0) {
        const std::size_t bucket =
            std::min(observation.predicted, config_.num_classes);
        if (reference_total_ < config_.rate_window) {
            // Still freezing the reference mix from the stream's head.
            ++reference_hist_[bucket];
            ++reference_total_;
        } else {
            window_.push_back(bucket);
            ++window_hist_[bucket];
            if (window_.size() > config_.rate_window) {
                --window_hist_[window_.front()];
                window_.pop_front();
            }
            if (window_.size() == config_.rate_window && rate_shifted()) {
                ++stats_.alarms_rate;
                alarm = true;
                // Re-baseline: the shifted mix becomes the new reference so
                // a persistent shift alarms once, like the PH detectors.
                reference_hist_ = window_hist_;
                reference_total_ = config_.rate_window;
                std::fill(window_hist_.begin(), window_hist_.end(), 0);
                window_.clear();
            }
        }
    }

    if (alarm && stats_.first_alarm_sample == 0) {
        stats_.first_alarm_sample = stats_.samples;
    }
    return alarm;
}

bool DriftMonitor::rate_shifted()
{
    double l1 = 0.0;
    for (std::size_t c = 0; c < reference_hist_.size(); ++c) {
        const double ref = static_cast<double>(reference_hist_[c]) /
                           static_cast<double>(reference_total_);
        const double cur = static_cast<double>(window_hist_[c]) /
                           static_cast<double>(window_.size());
        l1 += std::abs(ref - cur);
    }
    return l1 > config_.rate_threshold;
}

} // namespace fptc::serve
