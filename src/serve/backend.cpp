#include "fptc/serve/backend.hpp"

#include "fptc/core/data.hpp"
#include "fptc/core/trainer.hpp"
#include "fptc/flow/features.hpp"
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <utility>

namespace fptc::serve {

std::vector<std::size_t> Backend::classify(std::span<const ReadyFlow> batch,
                                           const util::CancelToken& token)
{
    const auto scored = classify_scored(batch, token);
    std::vector<std::size_t> labels;
    labels.reserve(scored.size());
    for (const ScoredPrediction& prediction : scored) {
        labels.push_back(prediction.label);
    }
    return labels;
}

CnnBackend::CnnBackend(std::size_t resolution, nn::Sequential network)
    : resolution_(resolution), network_(std::move(network))
{
}

std::unique_ptr<CnnBackend> CnnBackend::untrained(std::size_t resolution,
                                                  std::size_t num_classes, std::uint64_t seed)
{
    nn::ModelConfig config;
    config.flowpic_dim = resolution;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<CnnBackend>(resolution, nn::make_supervised_network(config));
}

const char* CnnBackend::name() const noexcept
{
    return resolution_ >= 32 ? "cnn_full" : "cnn_reduced";
}

std::vector<ScoredPrediction> CnnBackend::classify_scored(std::span<const ReadyFlow> batch,
                                                          const util::CancelToken& token)
{
    if (batch.empty()) {
        return {};
    }
    FPTC_TRACE_SPAN("serve_rasterize");
    const flowpic::FlowpicConfig config{
        .resolution = resolution_,
        .duration = 15.0,
        // Stream timestamps are absolute; anchor each flowpic at the flow's
        // own first packet, as a live tap must.
        .origin_at_first_packet = true,
    };
    std::vector<float> data;
    data.reserve(batch.size() * resolution_ * resolution_);
    for (const ReadyFlow& ready : batch) {
        token.poll();
        flowpic::Flowpic pic = flowpic::Flowpic::from_flow(ready.flow, config);
        pic.normalize_max();
        data.insert(data.end(), pic.counts().begin(), pic.counts().end());
    }
    token.poll();
    nn::Tensor input({batch.size(), 1, resolution_, resolution_}, std::move(data));
    FPTC_TRACE_SPAN("serve_forward");
    const nn::Tensor logits = network_.forward(input, false);
    const std::size_t classes = logits.shape()[1];
    const auto logit_data = logits.data();
    std::vector<ScoredPrediction> scored;
    scored.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto probs =
            nn::softmax_row(logit_data.subspan(i * classes, classes), calibration_.temperature);
        ScoredPrediction prediction;
        for (std::size_t k = 0; k < probs.size(); ++k) {
            if (probs[k] > probs[prediction.label]) {
                prediction.label = k;
            }
        }
        prediction.confidence = probs.empty() ? 0.0 : probs[prediction.label];
        scored.push_back(prediction);
    }
    return scored;
}

GbtBackend::GbtBackend(gbt::GbtClassifier classifier) : classifier_(std::move(classifier)) {}

const char* GbtBackend::name() const noexcept
{
    return "gbt_fallback";
}

std::vector<ScoredPrediction> GbtBackend::classify_scored(std::span<const ReadyFlow> batch,
                                                          const util::CancelToken& token)
{
    std::vector<ScoredPrediction> predictions;
    predictions.reserve(batch.size());
    for (const ReadyFlow& ready : batch) {
        token.poll();
        const auto features = flow::early_time_series(ready.flow);
        const auto probs = classifier_.predict_proba(features);
        ScoredPrediction prediction;
        for (std::size_t k = 0; k < probs.size(); ++k) {
            if (probs[k] > probs[prediction.label]) {
                prediction.label = k;
            }
        }
        prediction.confidence = probs.empty() ? 0.0 : probs[prediction.label];
        predictions.push_back(prediction);
    }
    return predictions;
}

BackendBundle make_backends(std::size_t full_dim, std::size_t reduced_dim,
                            std::size_t num_classes, std::uint64_t seed,
                            std::size_t train_flows_per_class, int cnn_epochs)
{
    BackendBundle bundle;
    bundle.full = CnnBackend::untrained(full_dim, num_classes, seed);
    bundle.reduced = CnnBackend::untrained(reduced_dim, num_classes, seed + 1);

    gbt::GbtConfig gbt_config;
    gbt_config.num_rounds = 20;
    gbt_config.max_depth = 3;
    gbt::GbtClassifier gbt(gbt_config, num_classes);

    // The GBT is always fitted: an unfitted ensemble rejects every feature
    // vector (feature-count mismatch), and the fallback tier must stay the
    // ladder's reliable floor.  A handful of flows per class suffices.
    const std::size_t gbt_flows = std::max<std::size_t>(train_flows_per_class, 8);
    util::Rng rng(util::mix_seed(seed, 0x7124));
    std::vector<flow::Flow> flows;
    for (std::size_t c = 0; c < num_classes; ++c) {
        const auto profile = trafficgen::ucdavis19_profile(c % 5, false);
        auto class_flows = trafficgen::generate_flows(profile, c, gbt_flows, rng);
        for (auto& f : class_flows) {
            flows.push_back(std::move(f));
        }
    }
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    features.reserve(flows.size());
    for (const flow::Flow& f : flows) {
        const auto early = flow::early_time_series(f);
        features.emplace_back(early.begin(), early.end());
        labels.push_back(f.label);
    }
    gbt.fit(features, labels);

    if (train_flows_per_class > 0 && cnn_epochs > 0) {
        core::TrainConfig train;
        train.max_epochs = cnn_epochs;
        train.seed = seed;
        for (CnnBackend* backend : {bundle.full.get(), bundle.reduced.get()}) {
            const core::SampleSet samples = core::rasterize(
                flows, {.resolution = backend->resolution(), .duration = 15.0});
            (void)core::train_supervised(backend->network(), samples, {}, train);
            // Fit the softmax temperature on the training set (Guo et al.
            // 2017) so the scores classify_scored() reports — and the
            // open-set threshold compares against — are calibrated
            // probabilities, not raw softmax confidence.
            if (!samples.images.empty()) {
                const std::size_t dim = samples.dim;
                std::vector<float> data;
                data.reserve(samples.images.size() * samples.channels * dim * dim);
                for (const auto& image : samples.images) {
                    data.insert(data.end(), image.begin(), image.end());
                }
                nn::Tensor input({samples.images.size(), samples.channels, dim, dim},
                                 std::move(data));
                const nn::Tensor logits = backend->network().forward(input, false);
                nn::Calibration calibration;
                calibration.temperature = nn::fit_temperature(logits, samples.labels);
                backend->set_calibration(calibration);
            }
        }
    }
    bundle.fallback = std::make_unique<GbtBackend>(std::move(gbt));
    return bundle;
}

} // namespace fptc::serve
