#include "fptc/serve/flightrec.hpp"

#include "fptc/util/crc32.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fptc::serve {

namespace {

// ---------------------------------------------------------------------------
// Ring-file layout (version 1).  Everything is u64 words so every slot is
// naturally aligned for std::atomic_ref:
//
//   [0..7]   file header: magic, version, generation, ring_count,
//            ring_capacity, stage_count, bucket_count, reserved
//   [8..]    exemplar region: stage_count × bucket_count flow ids
//   then per ring: 8-word ring header (word 0 = head), then
//            ring_capacity × 4-word event slots (ts, flow, arg, kind|detail)
// ---------------------------------------------------------------------------

constexpr char kRingMagic[8] = {'F', 'P', 'T', 'C', 'F', 'R', 'E', 'C'};
constexpr std::uint64_t kRingVersion = 1;
constexpr std::size_t kFileHeaderWords = 8;
constexpr std::size_t kRingHeaderWords = 8;
constexpr std::size_t kWordsPerEvent = 4;
constexpr std::size_t kMinCapacity = 64;
constexpr std::size_t kMaxCapacity = std::size_t{1} << 20;

std::size_t exemplar_words()
{
    return kFrecStageCount * kFrecBuckets;
}

std::size_t region_words(std::size_t capacity)
{
    return kFileHeaderWords + exemplar_words() +
           kFrecRingCount * (kRingHeaderWords + capacity * kWordsPerEvent);
}

std::uint64_t steady_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::atomic<FlightRecorder*> g_recorder{nullptr};

// -------------------------- postmortem codec -------------------------------

constexpr char kPmMagic[8] = {'F', 'P', 'T', 'C', 'P', 'M', 'R', 'T'};

void put_bytes(std::string& out, const void* data, std::size_t size)
{
    out.append(static_cast<const char*>(data), size);
}

void put_u32(std::string& out, std::uint32_t value)
{
    put_bytes(out, &value, sizeof(value));
}

void put_u64(std::string& out, std::uint64_t value)
{
    put_bytes(out, &value, sizeof(value));
}

void put_string(std::string& out, const std::string& value)
{
    put_u64(out, value.size());
    put_bytes(out, value.data(), value.size());
}

/// Bounds-checked sequential reader over the payload (snapshot.cpp idiom).
struct Reader {
    std::string_view data;
    std::size_t off = 0;
    bool ok = true;

    bool bytes(void* out, std::size_t size)
    {
        if (!ok || off + size > data.size() || off + size < off) {
            ok = false;
            return false;
        }
        std::memcpy(out, data.data() + off, size);
        off += size;
        return true;
    }
    std::uint32_t u32()
    {
        std::uint32_t value = 0;
        bytes(&value, sizeof(value));
        return value;
    }
    std::uint64_t u64()
    {
        std::uint64_t value = 0;
        bytes(&value, sizeof(value));
        return value;
    }
    bool string(std::string& out, std::uint64_t max_len)
    {
        const std::uint64_t len = u64();
        if (!ok || len > max_len || off + len > data.size()) {
            ok = false;
            return false;
        }
        out.assign(data.data() + off, len);
        off += len;
        return true;
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Vocabulary names
// ---------------------------------------------------------------------------

const char* frec_ring_name(std::uint32_t ring) noexcept
{
    switch (static_cast<FrecRing>(ring)) {
    case FrecRing::driver: return "driver";
    case FrecRing::assembler: return "assembler";
    case FrecRing::classifier: return "classifier";
    }
    return "unknown";
}

const char* frec_kind_name(std::uint32_t kind) noexcept
{
    switch (static_cast<FrecKind>(kind)) {
    case FrecKind::ingest: return "ingest";
    case FrecKind::quarantine: return "quarantine";
    case FrecKind::admit: return "admit";
    case FrecKind::codel_drop: return "codel_drop";
    case FrecKind::window_close: return "window_close";
    case FrecKind::batch_enqueue: return "batch_enqueue";
    case FrecKind::classify_start: return "classify_start";
    case FrecKind::classify_end: return "classify_end";
    case FrecKind::shed: return "shed";
    case FrecKind::unknown_route: return "unknown_route";
    case FrecKind::snapshot_marker: return "snapshot_marker";
    }
    return "unknown";
}

const char* frec_shed_name(std::uint32_t reason) noexcept
{
    switch (static_cast<FrecShed>(reason)) {
    case FrecShed::mem_budget: return "mem_budget";
    case FrecShed::queue_full: return "queue_full";
    case FrecShed::deadline: return "deadline";
    case FrecShed::breaker: return "breaker";
    case FrecShed::slo: return "slo";
    }
    return "unknown";
}

const char* frec_stage_name(std::uint32_t stage) noexcept
{
    switch (static_cast<FrecStage>(stage)) {
    case FrecStage::ingest_wait: return "ingest_wait";
    case FrecStage::assembly: return "assembly";
    case FrecStage::ready_wait: return "ready_wait";
    case FrecStage::backend_compute: return "backend_compute";
    }
    return "unknown";
}

const char* frec_stage_metric_name(FrecStage stage) noexcept
{
    switch (stage) {
    case FrecStage::ingest_wait: return "fptc_serve_stage_ingest_wait_ns";
    case FrecStage::assembly: return "fptc_serve_stage_assembly_ns";
    case FrecStage::ready_wait: return "fptc_serve_stage_ready_wait_ns";
    case FrecStage::backend_compute: return "fptc_serve_stage_backend_compute_ns";
    }
    return "fptc_serve_stage_unknown_ns";
}

std::size_t frec_bucket(std::uint64_t value) noexcept
{
    return static_cast<std::size_t>(std::bit_width(value));
}

const char* postmortem_reason_name(std::uint32_t reason) noexcept
{
    switch (static_cast<PostmortemReason>(reason)) {
    case PostmortemReason::watchdog_stall: return "watchdog_stall";
    case PostmortemReason::breaker_hard_trip: return "breaker_hard_trip";
    case PostmortemReason::sigkill_reap: return "sigkill_reap";
    case PostmortemReason::manual: return "manual";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Postmortem helpers + codec
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> Postmortem::last_watermark() const
{
    std::optional<std::uint64_t> watermark;
    std::uint64_t best_ts = 0;
    for (const RingDump& dump : rings) {
        for (const FlightEvent& event : dump.events) {
            if (event.kind == static_cast<std::uint32_t>(FrecKind::snapshot_marker) &&
                (!watermark.has_value() || event.ts_ns >= best_ts)) {
                best_ts = event.ts_ns;
                watermark = event.arg;
            }
        }
    }
    return watermark;
}

std::uint64_t Postmortem::event_count() const noexcept
{
    std::uint64_t total = 0;
    for (const RingDump& dump : rings) {
        total += dump.events.size();
    }
    return total;
}

std::string encode_postmortem(const Postmortem& postmortem)
{
    std::string payload;
    put_u32(payload, postmortem.reason);
    put_u32(payload, postmortem.generation);
    put_string(payload, postmortem.detail);
    put_u32(payload, static_cast<std::uint32_t>(postmortem.rings.size()));
    for (const Postmortem::RingDump& dump : postmortem.rings) {
        put_u32(payload, dump.ring);
        put_u64(payload, dump.recorded);
        put_u64(payload, dump.dropped);
        put_u64(payload, dump.events.size());
        for (const FlightEvent& event : dump.events) {
            put_u64(payload, event.ts_ns);
            put_u64(payload, event.flow_id);
            put_u64(payload, event.arg);
            put_u32(payload, event.kind);
            put_u32(payload, event.detail);
        }
    }
    put_u32(payload, static_cast<std::uint32_t>(postmortem.exemplars.size()));
    for (const Postmortem::Exemplar& exemplar : postmortem.exemplars) {
        put_u32(payload, exemplar.stage);
        put_u32(payload, exemplar.bucket);
        put_u64(payload, exemplar.flow_id);
    }
    put_string(payload, postmortem.metrics_text);

    std::string out;
    out.reserve(sizeof(kPmMagic) + sizeof(std::uint32_t) * 2 + payload.size() +
                sizeof(std::uint64_t));
    put_bytes(out, kPmMagic, sizeof(kPmMagic));
    put_u32(out, kPostmortemVersion);
    put_u64(out, payload.size());
    out += payload;
    put_u32(out, util::crc32(payload));
    return out;
}

std::optional<Postmortem> decode_postmortem(std::string_view bytes)
{
    const std::size_t header = sizeof(kPmMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);
    if (bytes.size() < header + sizeof(std::uint32_t)) {
        return std::nullopt;
    }
    if (std::memcmp(bytes.data(), kPmMagic, sizeof(kPmMagic)) != 0) {
        return std::nullopt;
    }
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(kPmMagic), sizeof(version));
    if (version != kPostmortemVersion) {
        return std::nullopt;
    }
    std::uint64_t payload_size = 0;
    std::memcpy(&payload_size, bytes.data() + sizeof(kPmMagic) + sizeof(version),
                sizeof(payload_size));
    if (payload_size != bytes.size() - header - sizeof(std::uint32_t)) {
        return std::nullopt;
    }
    const std::string_view payload = bytes.substr(header, payload_size);
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + header + payload_size, sizeof(stored_crc));
    if (util::crc32(payload) != stored_crc) {
        return std::nullopt;
    }

    Reader in{payload};
    Postmortem out;
    out.reason = in.u32();
    out.generation = in.u32();
    if (!in.string(out.detail, 1 << 16)) {
        return std::nullopt;
    }
    const std::uint32_t ring_count = in.u32();
    if (!in.ok || ring_count > 16) {
        return std::nullopt;
    }
    out.rings.reserve(ring_count);
    for (std::uint32_t r = 0; r < ring_count; ++r) {
        Postmortem::RingDump dump;
        dump.ring = in.u32();
        dump.recorded = in.u64();
        dump.dropped = in.u64();
        const std::uint64_t count = in.u64();
        if (!in.ok || count > (std::uint64_t{1} << 22)) {
            return std::nullopt;
        }
        dump.events.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
            FlightEvent event;
            event.ts_ns = in.u64();
            event.flow_id = in.u64();
            event.arg = in.u64();
            event.kind = in.u32();
            event.detail = in.u32();
            if (!in.ok) {
                return std::nullopt;
            }
            dump.events.push_back(event);
        }
        out.rings.push_back(std::move(dump));
    }
    const std::uint32_t exemplar_count = in.u32();
    if (!in.ok || exemplar_count > 16 * 128) {
        return std::nullopt;
    }
    out.exemplars.reserve(exemplar_count);
    for (std::uint32_t i = 0; i < exemplar_count; ++i) {
        Postmortem::Exemplar exemplar;
        exemplar.stage = in.u32();
        exemplar.bucket = in.u32();
        exemplar.flow_id = in.u64();
        if (!in.ok) {
            return std::nullopt;
        }
        out.exemplars.push_back(exemplar);
    }
    if (!in.string(out.metrics_text, std::uint64_t{1} << 26)) {
        return std::nullopt;
    }
    if (!in.ok || in.off != payload.size()) {
        return std::nullopt;  // trailing garbage = corruption, refuse
    }
    return out;
}

bool save_postmortem(const std::string& path, const Postmortem& postmortem)
{
    try {
        util::DurableFile::write_file(path, encode_postmortem(postmortem));
        return true;
    } catch (const std::exception& e) {
        util::log_info(std::string("serve: postmortem write failed (") + e.what() + ")");
        return false;
    }
}

std::optional<Postmortem> load_postmortem(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return std::nullopt;
    }
    const std::string bytes = buffer.str();
    return decode_postmortem(bytes);
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

namespace frec_detail {

std::atomic<int> gate{0};

void note_slow(FrecRing ring, FrecKind kind, std::uint64_t flow_id, std::uint64_t arg,
               std::uint32_t detail) noexcept
{
    FlightRecorder* recorder = g_recorder.load(std::memory_order_acquire);
    if (recorder != nullptr) {
        recorder->note(ring, kind, flow_id, arg, detail);
    }
}

void exemplar_slow(FrecStage stage, std::uint64_t value, std::uint64_t flow_id) noexcept
{
    FlightRecorder* recorder = g_recorder.load(std::memory_order_acquire);
    if (recorder != nullptr) {
        recorder->observe_exemplar(stage, value, flow_id);
    }
}

} // namespace frec_detail

FlightRecorder::FlightRecorder(const FrecConfig& config) : config_(config)
{
    config_.ring_capacity = std::clamp(config_.ring_capacity, kMinCapacity, kMaxCapacity);
    words_ = region_words(config_.ring_capacity);
    const std::size_t size = words_ * sizeof(std::uint64_t);

    if (!config_.ring_path.empty()) {
        const int fd = ::open(config_.ring_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (fd >= 0 && ::ftruncate(fd, static_cast<off_t>(size)) == 0) {
            void* mapping =
                ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
            if (mapping != MAP_FAILED) {
                base_ = static_cast<std::uint64_t*>(mapping);
                mapped_ = true;
            }
        }
        if (fd >= 0) {
            ::close(fd);
        }
        if (!mapped_) {
            util::log_info("serve: flight-recorder ring mmap failed for " +
                           config_.ring_path + "; falling back to private memory");
        }
    }
    if (base_ == nullptr) {
        base_ = new std::uint64_t[words_]();
    }

    // Reinitialize the region unconditionally: a leftover ring file from a
    // previous generation describes a run that already got its postmortem.
    std::memset(base_, 0, size);
    std::memcpy(&base_[0], kRingMagic, sizeof(kRingMagic));
    base_[1] = kRingVersion;
    base_[2] = config_.generation;
    base_[3] = kFrecRingCount;
    base_[4] = config_.ring_capacity;
    base_[5] = kFrecStageCount;
    base_[6] = kFrecBuckets;
    if (mapped_) {
        // Push the header through to the page cache so even an immediate
        // SIGKILL leaves a parseable (if empty) ring file.
        ::msync(base_, size, MS_ASYNC);
    }

    epoch_ns_ = steady_ns();
    g_recorder.store(this, std::memory_order_release);
    frec_detail::gate.store(1, std::memory_order_release);
}

FlightRecorder::~FlightRecorder()
{
    frec_detail::gate.store(0, std::memory_order_seq_cst);
    g_recorder.store(nullptr, std::memory_order_seq_cst);
    if (mapped_) {
        ::munmap(base_, words_ * sizeof(std::uint64_t));
    } else {
        delete[] base_;
    }
    base_ = nullptr;
}

std::uint64_t* FlightRecorder::ring_head(std::size_t ring) const noexcept
{
    const std::size_t ring_words = kRingHeaderWords + config_.ring_capacity * kWordsPerEvent;
    return base_ + kFileHeaderWords + exemplar_words() + ring * ring_words;
}

std::uint64_t* FlightRecorder::ring_slots(std::size_t ring) const noexcept
{
    return ring_head(ring) + kRingHeaderWords;
}

std::uint64_t* FlightRecorder::exemplar_slot(std::size_t stage,
                                             std::size_t bucket) const noexcept
{
    return base_ + kFileHeaderWords + stage * kFrecBuckets + bucket;
}

void FlightRecorder::note(FrecRing ring, FrecKind kind, std::uint64_t flow_id,
                          std::uint64_t arg, std::uint32_t detail) noexcept
{
    const std::size_t r = static_cast<std::size_t>(ring);
    std::uint64_t* head_word = ring_head(r);
    // Single producer per ring: the relaxed head load sees this thread's own
    // last store; the release store publishes the fully-written slot.
    const std::uint64_t head =
        std::atomic_ref<std::uint64_t>(*head_word).load(std::memory_order_relaxed);
    std::uint64_t* slot = ring_slots(r) + (head % config_.ring_capacity) * kWordsPerEvent;
    const std::uint64_t ts = steady_ns() - epoch_ns_;
    const std::uint64_t kd =
        (static_cast<std::uint64_t>(kind) << 32) | static_cast<std::uint64_t>(detail);
    std::atomic_ref<std::uint64_t>(slot[0]).store(ts, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(slot[1]).store(flow_id, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(slot[2]).store(arg, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(slot[3]).store(kd, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(*head_word).store(head + 1, std::memory_order_release);
}

void FlightRecorder::observe_exemplar(FrecStage stage, std::uint64_t value,
                                      std::uint64_t flow_id) noexcept
{
    const std::size_t bucket = frec_bucket(value);
    std::atomic_ref<std::uint64_t>(
        *exemplar_slot(static_cast<std::size_t>(stage), bucket))
        .store(flow_id, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::ring_snapshot(FrecRing ring) const
{
    const std::size_t r = static_cast<std::size_t>(ring);
    const std::uint64_t head =
        std::atomic_ref<std::uint64_t>(*ring_head(r)).load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(head, config_.ring_capacity);
    std::vector<FlightEvent> out;
    out.reserve(static_cast<std::size_t>(count));
    const std::uint64_t* slots = ring_slots(r);
    for (std::uint64_t i = head - count; i < head; ++i) {
        const std::uint64_t* slot = slots + (i % config_.ring_capacity) * kWordsPerEvent;
        FlightEvent event;
        event.ts_ns = std::atomic_ref<const std::uint64_t>(slot[0])
                          .load(std::memory_order_relaxed);
        event.flow_id = std::atomic_ref<const std::uint64_t>(slot[1])
                            .load(std::memory_order_relaxed);
        event.arg = std::atomic_ref<const std::uint64_t>(slot[2])
                        .load(std::memory_order_relaxed);
        const std::uint64_t kd = std::atomic_ref<const std::uint64_t>(slot[3])
                                     .load(std::memory_order_relaxed);
        event.kind = static_cast<std::uint32_t>(kd >> 32);
        event.detail = static_cast<std::uint32_t>(kd & 0xFFFFFFFFu);
        out.push_back(event);
    }
    return out;
}

std::uint64_t FlightRecorder::recorded(FrecRing ring) const noexcept
{
    return std::atomic_ref<std::uint64_t>(*ring_head(static_cast<std::size_t>(ring)))
        .load(std::memory_order_acquire);
}

std::uint64_t FlightRecorder::dropped(FrecRing ring) const noexcept
{
    const std::uint64_t head = recorded(ring);
    return head > config_.ring_capacity ? head - config_.ring_capacity : 0;
}

std::uint64_t FlightRecorder::recorded_total() const noexcept
{
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < kFrecRingCount; ++r) {
        total += recorded(static_cast<FrecRing>(r));
    }
    return total;
}

std::uint64_t FlightRecorder::dropped_total() const noexcept
{
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < kFrecRingCount; ++r) {
        total += dropped(static_cast<FrecRing>(r));
    }
    return total;
}

std::uint64_t FlightRecorder::exemplar(FrecStage stage, std::size_t bucket) const noexcept
{
    if (bucket >= kFrecBuckets) {
        return 0;
    }
    return std::atomic_ref<const std::uint64_t>(
               *exemplar_slot(static_cast<std::size_t>(stage), bucket))
        .load(std::memory_order_relaxed);
}

Postmortem FlightRecorder::build_postmortem(PostmortemReason reason, std::string detail,
                                            std::string metrics_text) const
{
    Postmortem out;
    out.reason = static_cast<std::uint32_t>(reason);
    out.generation = config_.generation;
    out.detail = std::move(detail);
    out.metrics_text = std::move(metrics_text);
    for (std::size_t r = 0; r < kFrecRingCount; ++r) {
        Postmortem::RingDump dump;
        dump.ring = static_cast<std::uint32_t>(r);
        dump.recorded = recorded(static_cast<FrecRing>(r));
        dump.dropped = dropped(static_cast<FrecRing>(r));
        dump.events = ring_snapshot(static_cast<FrecRing>(r));
        out.rings.push_back(std::move(dump));
    }
    for (std::size_t stage = 0; stage < kFrecStageCount; ++stage) {
        for (std::size_t bucket = 0; bucket < kFrecBuckets; ++bucket) {
            const std::uint64_t flow = exemplar(static_cast<FrecStage>(stage), bucket);
            if (flow != 0) {
                out.exemplars.push_back({static_cast<std::uint32_t>(stage),
                                         static_cast<std::uint32_t>(bucket), flow});
            }
        }
    }
    return out;
}

bool FlightRecorder::dump(const std::string& path, PostmortemReason reason,
                          std::string detail) const
{
    if (path.empty()) {
        return false;
    }
    Postmortem postmortem = build_postmortem(reason, std::move(detail),
                                             util::metrics().prometheus_text());
    const bool saved = save_postmortem(path, postmortem);
    if (saved) {
        util::log_info("serve: postmortem written to " + path + " (reason=" +
                       postmortem_reason_name(postmortem.reason) + " events=" +
                       std::to_string(postmortem.event_count()) + ")");
    }
    return saved;
}

void FlightRecorder::remove_backing() noexcept
{
    if (mapped_ && !config_.ring_path.empty()) {
        ::unlink(config_.ring_path.c_str());
    }
}

std::optional<Postmortem> FlightRecorder::read_ring_file(const std::string& ring_path)
{
    std::ifstream in(ring_path, std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return std::nullopt;
    }
    const std::string bytes = buffer.str();
    if (bytes.size() < kFileHeaderWords * sizeof(std::uint64_t) ||
        bytes.size() % sizeof(std::uint64_t) != 0) {
        return std::nullopt;
    }
    if (std::memcmp(bytes.data(), kRingMagic, sizeof(kRingMagic)) != 0) {
        return std::nullopt;
    }
    const auto word = [&](std::size_t index) {
        std::uint64_t value = 0;
        std::memcpy(&value, bytes.data() + index * sizeof(std::uint64_t), sizeof(value));
        return value;
    };
    if (word(1) != kRingVersion) {
        return std::nullopt;
    }
    const std::uint64_t generation = word(2);
    const std::uint64_t ring_count = word(3);
    const std::uint64_t capacity = word(4);
    const std::uint64_t stage_count = word(5);
    const std::uint64_t bucket_count = word(6);
    if (ring_count != kFrecRingCount || stage_count != kFrecStageCount ||
        bucket_count != kFrecBuckets || capacity < kMinCapacity ||
        capacity > kMaxCapacity) {
        return std::nullopt;
    }
    const std::size_t expected =
        region_words(static_cast<std::size_t>(capacity)) * sizeof(std::uint64_t);
    if (bytes.size() < expected) {
        return std::nullopt;
    }

    Postmortem out;
    out.generation = static_cast<std::uint32_t>(generation);
    const std::size_t ring_words =
        kRingHeaderWords + static_cast<std::size_t>(capacity) * kWordsPerEvent;
    for (std::size_t r = 0; r < kFrecRingCount; ++r) {
        const std::size_t ring_base = kFileHeaderWords + exemplar_words() + r * ring_words;
        const std::uint64_t head = word(ring_base);
        const std::uint64_t count = std::min(head, capacity);
        Postmortem::RingDump dump;
        dump.ring = static_cast<std::uint32_t>(r);
        dump.recorded = head;
        dump.dropped = head > capacity ? head - capacity : 0;
        dump.events.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = head - count; i < head; ++i) {
            const std::size_t slot = ring_base + kRingHeaderWords +
                                     static_cast<std::size_t>(i % capacity) * kWordsPerEvent;
            FlightEvent event;
            event.ts_ns = word(slot);
            event.flow_id = word(slot + 1);
            event.arg = word(slot + 2);
            const std::uint64_t kd = word(slot + 3);
            event.kind = static_cast<std::uint32_t>(kd >> 32);
            event.detail = static_cast<std::uint32_t>(kd & 0xFFFFFFFFu);
            dump.events.push_back(event);
        }
        out.rings.push_back(std::move(dump));
    }
    for (std::size_t stage = 0; stage < kFrecStageCount; ++stage) {
        for (std::size_t bucket = 0; bucket < kFrecBuckets; ++bucket) {
            const std::uint64_t flow =
                word(kFileHeaderWords + stage * kFrecBuckets + bucket);
            if (flow != 0) {
                out.exemplars.push_back({static_cast<std::uint32_t>(stage),
                                         static_cast<std::uint32_t>(bucket), flow});
            }
        }
    }
    return out;
}

bool FlightRecorder::seal_from_ring_file(const std::string& ring_path,
                                         const std::string& out_path,
                                         PostmortemReason reason, std::uint32_t generation,
                                         std::string detail)
{
    if (ring_path.empty() || out_path.empty()) {
        return false;
    }
    std::optional<Postmortem> postmortem = read_ring_file(ring_path);
    if (!postmortem.has_value()) {
        util::log_info("serve: no decodable flight-recorder ring at " + ring_path +
                       "; postmortem not sealed");
        return false;
    }
    postmortem->reason = static_cast<std::uint32_t>(reason);
    postmortem->generation = generation;
    postmortem->detail = std::move(detail);
    const bool saved = save_postmortem(out_path, *postmortem);
    if (saved) {
        util::log_info("serve: sealed postmortem to " + out_path + " (reason=" +
                       postmortem_reason_name(postmortem->reason) + " generation=" +
                       std::to_string(generation) + " events=" +
                       std::to_string(postmortem->event_count()) + ")");
    }
    return saved;
}

} // namespace fptc::serve
