#include "fptc/serve/supervisor.hpp"

#include "fptc/serve/flightrec.hpp"
#include "fptc/serve/watchdog.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/shard.hpp"
#include "fptc/util/shutdown.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fptc::serve {

namespace {

[[nodiscard]] std::string env_string(const char* name)
{
    const char* value = std::getenv(name);
    return value != nullptr ? std::string(value) : std::string();
}

/// Wall-clock seconds (heartbeat staleness compares against file mtime,
/// which is realtime).
[[nodiscard]] double wall_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/// Heartbeat file mtime in wall seconds, or nullopt when absent.
[[nodiscard]] std::optional<double> heartbeat_mtime(const std::string& path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        return std::nullopt;
    }
    return static_cast<double>(st.st_mtim.tv_sec) +
           static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
}

/// Blocking waitpid that still honours the double-signal escape hatch in
/// the shutdown handler (which _exits on the second SIGTERM/SIGINT).
[[nodiscard]] int wait_for_exit(int pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

} // namespace

SupervisorConfig SupervisorConfig::from_env()
{
    SupervisorConfig config;
    if (const auto v = util::env_int("FPTC_SERVE_MAX_RESTARTS")) {
        config.max_restarts = static_cast<int>(*v);
    }
    if (const auto v = util::env_double("FPTC_SERVE_BACKOFF_MS")) {
        config.backoff_ms = *v;
    }
    if (const auto v = util::env_double("FPTC_SERVE_HEARTBEAT_STALE_S")) {
        config.heartbeat_stale_s = *v;
    }
    config.heartbeat_path = env_string("FPTC_SERVE_HEARTBEAT");
    config.snapshot_path = env_string("FPTC_SERVE_SNAPSHOT");
    if (config.heartbeat_path.empty() && !config.snapshot_path.empty()) {
        // Default the liveness file next to the snapshot so one knob
        // (FPTC_SERVE_SNAPSHOT) yields a fully wired supervised setup.
        config.heartbeat_path = config.snapshot_path + ".heartbeat";
    }
    config.postmortem_path = env_string("FPTC_SERVE_POSTMORTEM");
    config.flightrec_ring = env_string("FPTC_SERVE_FLIGHTREC_RING");
    if (config.flightrec_ring.empty() && !config.postmortem_path.empty()) {
        // Must mirror ServeConfig::from_env so the supervisor seals the
        // same ring file the worker maps.
        config.flightrec_ring = config.postmortem_path + ".ring";
    }
    return config;
}

double backoff_delay_ms(const SupervisorConfig& config, int restart)
{
    double delay = config.backoff_ms;
    for (int i = 1; i < restart; ++i) {
        delay *= 2.0;
        if (delay >= config.backoff_cap_ms) {
            return config.backoff_cap_ms;
        }
    }
    return delay < config.backoff_cap_ms ? delay : config.backoff_cap_ms;
}

bool is_serve_worker()
{
    return env_string(kServeRoleEnv) == kServeRoleWorker;
}

std::uint32_t serve_generation()
{
    if (const auto v = util::env_int(kServeGenerationEnv)) {
        return static_cast<std::uint32_t>(*v);
    }
    return 0;
}

int run_supervisor(const SupervisorConfig& config)
{
    util::install_shutdown_handlers();
    if (!config.snapshot_path.empty()) {
        // Crash debris from a previous incarnation: half-written snapshot
        // temps whose writer is gone (same scavenger the journal/checkpoint
        // layer uses at startup).
        const std::size_t removed =
            util::scavenge_orphan_temps(util::parent_dir_of(config.snapshot_path));
        if (removed > 0) {
            util::log_info("serve supervisor: scavenged " + std::to_string(removed) +
                           " orphaned snapshot temp file(s)");
        }
    }
    if (!config.heartbeat_path.empty()) {
        ::unlink(config.heartbeat_path.c_str());  // stale liveness from a previous run
    }

    int restarts = 0;
    bool degraded = false;
    int last_status = 0;
    while (true) {
        const bool final_attempt = restarts == config.max_restarts && config.max_restarts > 0;
        std::vector<util::EnvVar> env{
            {kServeRoleEnv, kServeRoleWorker, false},
            {kServeGenerationEnv, std::to_string(restarts), false},
        };
        if (!config.heartbeat_path.empty()) {
            env.push_back({"FPTC_SERVE_HEARTBEAT", config.heartbeat_path, false});
        }
        if (!config.postmortem_path.empty()) {
            // Explicit so worker and supervisor agree on the ring file even
            // when the paths were defaulted rather than taken from the env.
            env.push_back({"FPTC_SERVE_POSTMORTEM", config.postmortem_path, false});
            env.push_back({"FPTC_SERVE_FLIGHTREC_RING", config.flightrec_ring, false});
        }
        if (restarts > 0) {
            // Injected one-shot faults must not replay in the recovered
            // generation — the point is to recover from the crash, not to
            // loop it.
            env.push_back({"FPTC_FAULT_KILL_SERVE", "", true});
            env.push_back({"FPTC_FAULT_SERVE_HANG", "", true});
        }
        if (final_attempt) {
            degraded = true;
            env.push_back({"FPTC_SERVE_GBT_ONLY", "1", false});
            util::log_info("serve supervisor: final restart — degrading worker to GBT-only");
        }

        const double spawned_at = wall_seconds();
        const int pid = util::spawn_shard_worker(env, /*stdout_path=*/"");
        util::log_info("serve supervisor: worker generation " + std::to_string(restarts) +
                       " started (pid " + std::to_string(pid) + ")");

        // Watch: death via waitpid, wedge via heartbeat staleness.
        int status = 0;
        bool beat_seen = false;
        bool killed_for_stall = false;
        while (true) {
            const int reaped = ::waitpid(pid, &status, WNOHANG);
            if (reaped == pid) {
                break;
            }
            if (util::shutdown_requested()) {
                ::kill(pid, SIGTERM);
                status = wait_for_exit(pid);
                util::log_info("serve supervisor: shutdown signal forwarded to worker");
                return util::shutdown_exit_code(util::shutdown_signal());
            }
            if (!config.heartbeat_path.empty() && config.heartbeat_stale_s > 0.0 &&
                !killed_for_stall) {
                const auto mtime = heartbeat_mtime(config.heartbeat_path);
                if (mtime.has_value() && *mtime > spawned_at - 1.0) {
                    beat_seen = true;
                }
                if (beat_seen && mtime.has_value() &&
                    wall_seconds() - *mtime > config.heartbeat_stale_s) {
                    util::log_info("serve supervisor: worker heartbeat stale for over " +
                                   std::to_string(config.heartbeat_stale_s) +
                                   "s — SIGKILLing wedged worker");
                    ::kill(pid, SIGKILL);
                    killed_for_stall = true;
                }
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }

        if (WIFEXITED(status)) {
            const int code = WEXITSTATUS(status);
            if (code == 0) {
                util::log_info("serve supervisor: worker finished cleanly after " +
                               std::to_string(restarts) + " restart(s)" +
                               (degraded ? " (degraded to GBT-only)" : ""));
                util::log_raw("SUPERVISOR_OK restarts=" + std::to_string(restarts) +
                              " degraded=" + std::to_string(degraded ? 1 : 0));
                return 0;
            }
            if (code == 127) {
                util::log_info("serve supervisor: worker exec failed (127); not retrying");
                return 127;
            }
            last_status = code;
            util::log_info(std::string("serve supervisor: worker ") +
                           (code == kHangExitCode ? "hang-exited (watchdog)" : "crashed") +
                           " with code " + std::to_string(code));
        } else if (WIFSIGNALED(status)) {
            const int signum = WTERMSIG(status);
            last_status = 128 + signum;
            util::log_info("serve supervisor: worker killed by signal " + std::to_string(signum) +
                           (killed_for_stall ? " (supervisor stall kill)" : ""));
            // A signalled worker ran no handlers, but its flight-recorder
            // stores landed in the mmap'd ring file: seal them into a
            // postmortem *before* the next generation reinitializes the
            // rings.  Sealing failure (no recorder armed, corrupt file)
            // costs diagnostics, never the restart.
            if (!config.postmortem_path.empty() && !config.flightrec_ring.empty() &&
                !FlightRecorder::seal_from_ring_file(
                    config.flightrec_ring, config.postmortem_path,
                    PostmortemReason::sigkill_reap, static_cast<std::uint32_t>(restarts),
                    "signal " + std::to_string(signum))) {
                util::log_info("serve supervisor: no sealable ring file at " +
                               config.flightrec_ring);
            }
        } else {
            last_status = 1;
        }

        if (restarts >= config.max_restarts) {
            util::log_info("serve supervisor: crash-loop budget exhausted (" +
                           std::to_string(config.max_restarts) + " restart(s)); giving up");
            return last_status;
        }
        ++restarts;
        const double delay = backoff_delay_ms(config, restarts);
        util::log_info("serve supervisor: restarting in " + std::to_string(delay) + "ms");
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
}

} // namespace fptc::serve
