#include "fptc/serve/snapshot.hpp"

#include "fptc/util/crc32.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/telemetry.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

namespace fptc::serve {

namespace {

constexpr char kMagic[8] = {'F', 'P', 'T', 'C', 'S', 'N', 'A', 'P'};

// Fixed-width little-endian-on-every-supported-target primitives.  The
// snapshot is a same-host crash-recovery artifact, not an interchange
// format, so native byte order via memcpy is sufficient and keeps the
// codec trivially ubsan-clean.
void put_bytes(std::string& out, const void* data, std::size_t size)
{
    out.append(static_cast<const char*>(data), size);
}

void put_u32(std::string& out, std::uint32_t value) { put_bytes(out, &value, sizeof value); }
void put_u64(std::string& out, std::uint64_t value) { put_bytes(out, &value, sizeof value); }
void put_f64(std::string& out, double value) { put_bytes(out, &value, sizeof value); }

/// Bounds-checked reads; false = truncated.
struct Reader {
    std::string_view data;
    std::size_t off = 0;

    bool bytes(void* dest, std::size_t size)
    {
        if (off + size > data.size()) {
            return false;
        }
        std::memcpy(dest, data.data() + off, size);
        off += size;
        return true;
    }

    bool u32(std::uint32_t& value) { return bytes(&value, sizeof value); }
    bool u64(std::uint64_t& value) { return bytes(&value, sizeof value); }
    bool f64(double& value) { return bytes(&value, sizeof value); }
};

void put_counters(std::string& out, const SnapshotCounters& c)
{
    put_u64(out, c.events_total);
    put_u64(out, c.events_quarantined);
    put_u64(out, c.events_dropped_queue);
    put_u64(out, c.events_dropped_mem);
    put_u64(out, c.events_dropped_slo);
    put_u64(out, c.flows_ingested);
    put_u64(out, c.flows_classified);
    put_u64(out, c.flows_correct);
    put_u64(out, c.shed_mem_budget);
    put_u64(out, c.shed_queue_full);
    put_u64(out, c.shed_deadline);
    put_u64(out, c.shed_breaker);
    put_u64(out, c.shed_slo);
    put_u64(out, c.shed_restart_loss);
    put_u64(out, c.batches);
    put_u64(out, c.slo_violations);
    put_u64(out, c.flows_unknown);
    put_u64(out, c.unknown_truth_total);
    put_u64(out, c.unknown_truth_rejected);
    put_u64(out, c.events_quarantined_backwards);
    put_u64(out, c.drift_alarms);
    put_u64(out, c.reloads);
    put_u64(out, c.reload_rollbacks);
}

bool get_counters(Reader& in, SnapshotCounters& c)
{
    return in.u64(c.events_total) && in.u64(c.events_quarantined) &&
           in.u64(c.events_dropped_queue) && in.u64(c.events_dropped_mem) &&
           in.u64(c.events_dropped_slo) && in.u64(c.flows_ingested) &&
           in.u64(c.flows_classified) && in.u64(c.flows_correct) && in.u64(c.shed_mem_budget) &&
           in.u64(c.shed_queue_full) && in.u64(c.shed_deadline) && in.u64(c.shed_breaker) &&
           in.u64(c.shed_slo) && in.u64(c.shed_restart_loss) && in.u64(c.batches) &&
           in.u64(c.slo_violations) && in.u64(c.flows_unknown) && in.u64(c.unknown_truth_total) &&
           in.u64(c.unknown_truth_rejected) && in.u64(c.events_quarantined_backwards) &&
           in.u64(c.drift_alarms) && in.u64(c.reloads) && in.u64(c.reload_rollbacks);
}

} // namespace

std::string encode_snapshot(const ServeSnapshot& snapshot)
{
    FPTC_TRACE_SPAN("serve_snapshot_encode");
    std::string payload;
    put_u64(payload, snapshot.watermark);
    put_f64(payload, snapshot.stream_now);
    put_u32(payload, snapshot.generation);
    put_u32(payload, snapshot.model_generation);
    put_u64(payload, snapshot.config_fingerprint);
    put_counters(payload, snapshot.counters);
    put_u64(payload, snapshot.flows.size());
    for (const SnapshotFlow& flow : snapshot.flows) {
        put_u64(payload, flow.flow_id);
        put_u32(payload, flow.label);
        put_f64(payload, flow.first_ts);
        put_u64(payload, flow.packets.size());
        for (const flow::Packet& packet : flow.packets) {
            put_f64(payload, packet.timestamp);
            put_u32(payload, static_cast<std::uint32_t>(packet.size));
            put_u32(payload, packet.direction == flow::Direction::upstream ? 1u : 0u);
        }
    }

    std::string out;
    out.reserve(sizeof(kMagic) + sizeof(std::uint32_t) * 2 + payload.size());
    put_bytes(out, kMagic, sizeof kMagic);
    put_u32(out, kSnapshotVersion);
    out += payload;
    put_u32(out, util::crc32(payload));
    return out;
}

std::optional<ServeSnapshot> decode_snapshot(std::string_view data)
{
    FPTC_TRACE_SPAN("serve_snapshot_decode");
    constexpr std::size_t header = sizeof(kMagic) + sizeof(std::uint32_t);
    constexpr std::size_t trailer = sizeof(std::uint32_t);
    if (data.size() < header + trailer) {
        return std::nullopt;
    }
    if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
        return std::nullopt;
    }
    Reader in{data, sizeof(kMagic)};
    std::uint32_t version = 0;
    if (!in.u32(version) || version != kSnapshotVersion) {
        return std::nullopt;
    }
    const std::string_view payload = data.substr(header, data.size() - header - trailer);
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, data.data() + data.size() - trailer, trailer);
    if (util::crc32(payload) != stored_crc) {
        return std::nullopt;
    }

    ServeSnapshot snapshot;
    if (!in.u64(snapshot.watermark) || !in.f64(snapshot.stream_now) ||
        !in.u32(snapshot.generation) || !in.u32(snapshot.model_generation) ||
        !in.u64(snapshot.config_fingerprint) || !get_counters(in, snapshot.counters)) {
        return std::nullopt;
    }
    std::uint64_t flow_count = 0;
    if (!in.u64(flow_count)) {
        return std::nullopt;
    }
    // Cheap sanity bound before reserving: each flow needs at least its
    // fixed-size header in the payload.
    constexpr std::uint64_t kFlowHeaderBytes = 8 + 4 + 8 + 8;
    if (flow_count > data.size() / kFlowHeaderBytes + 1) {
        return std::nullopt;
    }
    snapshot.flows.reserve(static_cast<std::size_t>(flow_count));
    for (std::uint64_t f = 0; f < flow_count; ++f) {
        SnapshotFlow flow;
        std::uint64_t packet_count = 0;
        if (!in.u64(flow.flow_id) || !in.u32(flow.label) || !in.f64(flow.first_ts) ||
            !in.u64(packet_count)) {
            return std::nullopt;
        }
        constexpr std::uint64_t kPacketBytes = 8 + 4 + 4;
        if (packet_count > data.size() / kPacketBytes + 1) {
            return std::nullopt;
        }
        flow.packets.reserve(static_cast<std::size_t>(packet_count));
        for (std::uint64_t p = 0; p < packet_count; ++p) {
            double ts = 0.0;
            std::uint32_t size = 0;
            std::uint32_t direction = 0;
            if (!in.f64(ts) || !in.u32(size) || !in.u32(direction)) {
                return std::nullopt;
            }
            flow.packets.push_back(flow::Packet{
                .timestamp = ts,
                .size = static_cast<int>(size),
                .direction = direction != 0 ? flow::Direction::upstream
                                            : flow::Direction::downstream,
                .is_ack = false,
            });
        }
        snapshot.flows.push_back(std::move(flow));
    }
    if (in.off != header + (data.size() - header - trailer)) {
        return std::nullopt;  // trailing garbage inside the checksummed payload
    }
    return snapshot;
}

void save_snapshot(const std::string& path, const ServeSnapshot& snapshot)
{
    util::DurableFile::write_file(path, encode_snapshot(snapshot));
}

std::optional<ServeSnapshot> load_snapshot(const std::string& path,
                                           std::uint64_t expect_fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
        return std::nullopt;
    }
    auto snapshot = decode_snapshot(buffer.str());
    if (snapshot.has_value() && expect_fingerprint != 0 &&
        snapshot->config_fingerprint != expect_fingerprint) {
        return std::nullopt;
    }
    return snapshot;
}

} // namespace fptc::serve
