#include "fptc/serve/status.hpp"

#include "fptc/util/log.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include <unistd.h>

namespace fptc::serve {

StatusWriter::StatusWriter(StatusWriterConfig config, std::function<std::string()> render)
    : config_(std::move(config)), render_(std::move(render))
{
    config_.period_s = std::max(config_.period_s, 0.05);
    if (!enabled()) {
        stopped_ = true;
        return;
    }
    thread_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            // Export first, then sleep: the file exists within one render of
            // startup, not one period.
            lock.unlock();
            write_once();
            lock.lock();
            if (stopping_) {
                return;
            }
            cv_.wait_for(lock,
                         std::chrono::duration<double>(config_.period_s),
                         [this] { return stopping_; });
            if (stopping_) {
                return;
            }
        }
    });
}

StatusWriter::~StatusWriter()
{
    stop();
}

void StatusWriter::stop()
{
    if (stopped_) {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
        thread_.join();
    }
    write_once();  // final snapshot: the file reflects the run's end state
    stopped_ = true;
}

void StatusWriter::write_once()
{
    const std::string body = render_();
    // temp + rename: a reader opening `path` sees the previous complete
    // document or this one, never a prefix.  The temp name carries the pid
    // so the orphan scavenger can identify dead writers.
    const std::string temp = config_.path + ".tmp." + std::to_string(::getpid());
    std::FILE* out = std::fopen(temp.c_str(), "wb");
    if (out == nullptr) {
        if (!warned_) {
            warned_ = true;
            util::log_info("serve: status export failed to open " + temp + "; disabling");
        }
        return;
    }
    const std::size_t written = std::fwrite(body.data(), 1, body.size(), out);
    const bool closed = std::fclose(out) == 0;
    if (written != body.size() || !closed ||
        std::rename(temp.c_str(), config_.path.c_str()) != 0) {
        ::unlink(temp.c_str());
        if (!warned_) {
            warned_ = true;
            util::log_info("serve: status export to " + config_.path + " failed; continuing");
        }
        return;
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace fptc::serve
