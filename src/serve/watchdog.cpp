#include "fptc/serve/watchdog.hpp"

#include "fptc/util/log.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace fptc::serve {

Watchdog::Watchdog(WatchdogConfig config) : config_(std::move(config)) {}

Watchdog::~Watchdog()
{
    stop();
}

std::int64_t Watchdog::now_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::size_t Watchdog::add_thread(const std::string& name)
{
    auto slot = std::make_unique<Slot>();
    slot->name = name;
    slot->last_beat_ns.store(now_ns(), std::memory_order_relaxed);
    slots_.push_back(std::move(slot));
    return slots_.size() - 1;
}

void Watchdog::beat(std::size_t slot)
{
    slots_[slot]->last_beat_ns.store(now_ns(), std::memory_order_relaxed);
}

void Watchdog::set_idle(std::size_t slot, bool idle)
{
    // Re-stamp on every transition so time spent idle never counts toward
    // the stall budget once the slot goes active again.
    slots_[slot]->last_beat_ns.store(now_ns(), std::memory_order_relaxed);
    slots_[slot]->state.store(static_cast<int>(idle ? SlotState::idle : SlotState::active),
                              std::memory_order_relaxed);
}

void Watchdog::mark_done(std::size_t slot)
{
    slots_[slot]->state.store(static_cast<int>(SlotState::done), std::memory_order_relaxed);
}

void Watchdog::touch_heartbeat() const
{
    if (config_.heartbeat_path.empty()) {
        return;
    }
    // Plain truncate-and-write, deliberately NOT the durable path: the
    // heartbeat is a liveness signal for the co-resident supervisor (which
    // watches the file's mtime), not persistent state; an fsync per beat
    // would be pure overhead and a torn beat is indistinguishable from a
    // fresh one.
    const int fd = ::open(config_.heartbeat_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return;
    }
    const std::string stamp = std::to_string(now_ns()) + "\n";
    [[maybe_unused]] const ssize_t written = ::write(fd, stamp.data(), stamp.size());
    ::close(fd);
}

void Watchdog::start()
{
    if (!enabled() || thread_.joinable()) {
        return;
    }
    stop_.store(false, std::memory_order_relaxed);
    touch_heartbeat();
    thread_ = std::thread([this] { run(); });
}

void Watchdog::stop()
{
    if (!thread_.joinable()) {
        return;
    }
    {
        std::lock_guard lock(wake_mutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    wake_cv_.notify_all();
    thread_.join();
}

void Watchdog::run()
{
    const auto poll = std::chrono::duration<double>(config_.poll_seconds);
    const double stall_ns = config_.stall_seconds * 1e9;
    while (true) {
        {
            std::unique_lock lock(wake_mutex_);
            if (wake_cv_.wait_for(lock, poll,
                                  [this] { return stop_.load(std::memory_order_relaxed); })) {
                return;
            }
        }
        touch_heartbeat();
        if (config_.stall_seconds <= 0.0) {
            continue;
        }
        const std::int64_t now = now_ns();
        for (const auto& slot : slots_) {
            if (slot->state.load(std::memory_order_relaxed) !=
                static_cast<int>(SlotState::active)) {
                continue;
            }
            const std::int64_t last = slot->last_beat_ns.load(std::memory_order_relaxed);
            if (static_cast<double>(now - last) <= stall_ns) {
                continue;
            }
            if (config_.on_stall) {
                config_.on_stall(slot->name);
                // Injected handler (tests): stamp the slot so one stall is
                // reported once, not once per poll.
                slot->last_beat_ns.store(now_ns(), std::memory_order_relaxed);
                continue;
            }
            util::log_info("serve watchdog: thread '" + slot->name + "' stalled for over " +
                           std::to_string(config_.stall_seconds) +
                           "s; exiting with kHangExitCode for supervisor recovery");
            // No orderly teardown: the pipeline is wedged and destructors
            // would block on it.  _Exit skips atexit/static destructors.
            std::_Exit(kHangExitCode);
        }
    }
}

} // namespace fptc::serve
