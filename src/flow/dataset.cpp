#include "fptc/flow/dataset.hpp"

#include "fptc/util/table.hpp"

#include <algorithm>
#include <limits>

namespace fptc::flow {

std::vector<std::size_t> Dataset::class_counts() const
{
    std::vector<std::size_t> counts(class_names.size(), 0);
    for (const auto& flow : flows) {
        if (flow.label < counts.size()) {
            ++counts[flow.label];
        }
    }
    return counts;
}

std::vector<std::size_t> Dataset::indices_of_class(std::size_t label) const
{
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        if (flows[i].label == label) {
            indices.push_back(i);
        }
    }
    return indices;
}

DatasetSummary summarize(const Dataset& dataset)
{
    DatasetSummary summary;
    summary.classes = dataset.num_classes();
    summary.flows_all = dataset.flows.size();
    const auto counts = dataset.class_counts();
    summary.flows_min = std::numeric_limits<std::size_t>::max();
    summary.flows_max = 0;
    for (const auto count : counts) {
        summary.flows_min = std::min(summary.flows_min, count);
        summary.flows_max = std::max(summary.flows_max, count);
    }
    if (counts.empty() || summary.flows_all == 0) {
        summary.flows_min = 0;
    }
    if (summary.flows_min > 0) {
        summary.rho =
            static_cast<double>(summary.flows_max) / static_cast<double>(summary.flows_min);
    }
    std::size_t total_packets = 0;
    for (const auto& flow : dataset.flows) {
        total_packets += flow.packets.size();
    }
    if (!dataset.flows.empty()) {
        summary.mean_packets =
            static_cast<double>(total_packets) / static_cast<double>(dataset.flows.size());
    }
    return summary;
}

std::string render_summaries(const std::vector<Dataset>& datasets)
{
    util::Table table("Summary of datasets properties (cf. Table 2 of the paper)");
    table.set_header({"Name", "Classes", "Flows all", "min", "max", "rho", "mean pkts"});
    for (const auto& dataset : datasets) {
        const auto s = summarize(dataset);
        table.add_row({dataset.name, std::to_string(s.classes), std::to_string(s.flows_all),
                       std::to_string(s.flows_min), std::to_string(s.flows_max),
                       util::format_double(s.rho, 1), util::format_double(s.mean_packets, 0)});
    }
    table.add_footnote(
        "rho: ratio between max and min number of flows - the larger the value, the higher the "
        "class imbalance");
    return table.to_string();
}

} // namespace fptc::flow
