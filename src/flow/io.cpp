#include "fptc/flow/io.hpp"

#include "fptc/util/fault.hpp"
#include "fptc/util/journal.hpp"
#include "fptc/util/log.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace fptc::flow {

namespace {

constexpr const char* kColumns[] = {"flow_id", "label",     "class_name", "timestamp",
                                    "size",    "direction", "is_ack",     "background"};
constexpr std::size_t kColumnCount = sizeof(kColumns) / sizeof(kColumns[0]);
constexpr const char* kHeader = "flow_id,label,class_name,timestamp,size,direction,is_ack,background";

/// Labels beyond this are treated as corruption (they would otherwise grow
/// the class vocabulary — and its allocation — without bound).
constexpr std::size_t kMaxLabel = 1'000'000;

/// Largest packet size a CSV row may carry: the maximum IP datagram.  The
/// flowpic input representation caps at flow::kMaxPacketSize (1500) later;
/// this bound only rejects values no packet on any wire can have.
constexpr int kMaxCsvPacketSize = 65535;

/// Split `line` on ',' into `fields`, reusing the vector's strings (and
/// their heap buffers) across calls — the bulk-ingestion loop calls this
/// once per row, so per-row allocations would dominate the parse.
/// '\r' is stripped anywhere, matching the historical behaviour.
void split_fields_into(const std::string& line, std::vector<std::string>& fields)
{
    std::size_t used = 0;
    auto next_field = [&fields, &used]() -> std::string& {
        if (used == fields.size()) {
            fields.emplace_back();
        }
        std::string& field = fields[used++];
        field.clear();  // keeps capacity
        return field;
    };
    std::string* current = &next_field();
    for (const char c : line) {
        if (c == ',') {
            current = &next_field();
        } else if (c != '\r') {
            current->push_back(c);
        }
    }
    fields.resize(used);
}

[[nodiscard]] std::vector<std::string> split_fields(const std::string& line)
{
    std::vector<std::string> fields;
    split_fields_into(line, fields);
    return fields;
}

[[nodiscard]] std::string line_prefix(std::size_t line_number)
{
    return "read_dataset_csv: line " + std::to_string(line_number) + ": ";
}

template <typename T>
[[nodiscard]] T parse_number(const std::string& field, const char* what, std::size_t line_number)
{
    T value{};
    const auto* begin = field.data();
    const auto* end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        throw std::runtime_error(line_prefix(line_number) + "bad " + what + " '" + field + "'");
    }
    return value;
}

[[nodiscard]] double parse_double(const std::string& field, const char* what,
                                  std::size_t line_number)
{
    // std::from_chars<double> is not universally available; strtod suffices
    // for the numeric grammar — but it also accepts "nan", "inf"/"infinity",
    // hex floats ("0x1p3") and leading whitespace, none of which a dataset
    // row may legitimately contain (a NaN timestamp would silently poison
    // every downstream flowpic).  Restrict the alphabet to plain decimal
    // notation first, then reject any non-finite result (e.g. "1e999").
    for (const char c : field) {
        const bool decimal = (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
                             c == 'e' || c == 'E';
        if (!decimal) {
            throw std::runtime_error(line_prefix(line_number) + "bad " + what + " '" + field +
                                     "'");
        }
    }
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (field.empty() || end != field.c_str() + field.size() || !std::isfinite(value)) {
        throw std::runtime_error(line_prefix(line_number) + "bad " + what + " '" + field + "'");
    }
    return value;
}

/// Column-by-column header validation: naming the first wrong column catches
/// reordered exports that would otherwise parse silently wherever the field
/// types happen to line up.
void validate_header(const std::string& raw_header)
{
    std::string line = raw_header;
    // Tolerate a UTF-8 BOM and trailing CR on the header.
    if (line.size() >= 3 && static_cast<unsigned char>(line[0]) == 0xEF) {
        line.erase(0, 3);
    }
    if (!line.empty() && line.back() == '\r') {
        line.pop_back();
    }
    const auto columns = split_fields(line);
    if (columns.size() != kColumnCount) {
        throw std::runtime_error("read_dataset_csv: line 1: header has " +
                                 std::to_string(columns.size()) + " columns, expected " +
                                 std::to_string(kColumnCount) + " ('" + kHeader + "')");
    }
    for (std::size_t c = 0; c < kColumnCount; ++c) {
        if (columns[c] != kColumns[c]) {
            throw std::runtime_error("read_dataset_csv: line 1: header column " +
                                     std::to_string(c + 1) + " is '" + columns[c] +
                                     "', expected '" + kColumns[c] +
                                     "' — refusing to guess a column order");
        }
    }
}

} // namespace

void write_dataset_csv(const Dataset& dataset, std::ostream& out)
{
    out << kHeader << '\n';
    for (std::size_t flow_id = 0; flow_id < dataset.flows.size(); ++flow_id) {
        const auto& flow = dataset.flows[flow_id];
        const std::string& class_name = flow.label < dataset.class_names.size()
                                            ? dataset.class_names[flow.label]
                                            : std::string("class-") + std::to_string(flow.label);
        for (const auto& packet : flow.packets) {
            out << flow_id << ',' << flow.label << ',' << class_name << ',' << packet.timestamp
                << ',' << packet.size << ','
                << (packet.direction == Direction::upstream ? "up" : "down") << ','
                << (packet.is_ack ? 1 : 0) << ',' << (flow.background ? 1 : 0) << '\n';
        }
    }
    if (!out) {
        throw std::runtime_error("write_dataset_csv: stream failure");
    }
}

void write_dataset_csv(const Dataset& dataset, const std::string& path)
{
    // Durable temp-file + fsync + rename: a killed export never leaves a
    // partial (or, after power loss, empty-but-renamed) dataset behind for
    // a later campaign to trip over.
    std::ostringstream buffer;
    write_dataset_csv(dataset, buffer);
    util::atomic_write_file(path, buffer.str());
}

Dataset read_dataset_csv(std::istream& in, const CsvReadOptions& options, CsvReadReport* report)
{
    CsvReadReport local_report;
    CsvReadReport& rep = report != nullptr ? *report : local_report;
    rep = CsvReadReport{};

    std::string line;
    if (!std::getline(in, line)) {
        throw std::runtime_error("read_dataset_csv: empty input");
    }
    validate_header(line);

    Dataset dataset;
    // Strict mode enforces contiguous ascending flow ids (the written
    // format).  Quarantine mode only requires that each flow's rows stay
    // contiguous: when a flow's first row was dropped the remaining rows
    // still begin a usable flow, but a flow id *resuming* after other flows
    // is corruption.
    long current_flow = -1;
    bool flow_open = false;
    std::unordered_set<long> seen_flow_ids;
    std::size_t line_number = 1;
    std::vector<std::string> fields;  // reused across rows (split_fields_into)

    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        if (options.quarantine && util::fault_injector().inject_csv_corruption()) {
            // Deterministically mangle the row (wrong field count) so the
            // quarantine path is exercised end-to-end.
            line.insert(0, "~fault~,");
            ++rep.injected_faults;
        }
        try {
            split_fields_into(line, fields);
            if (fields.size() != kColumnCount) {
                throw std::runtime_error(line_prefix(line_number) + "expected " +
                                         std::to_string(kColumnCount) + " fields, got " +
                                         std::to_string(fields.size()));
            }
            const auto flow_id = parse_number<long>(fields[0], "flow_id", line_number);
            const auto label = parse_number<std::size_t>(fields[1], "label", line_number);
            if (label > kMaxLabel) {
                throw std::runtime_error(line_prefix(line_number) + "implausible label " +
                                         std::to_string(label));
            }
            const auto& class_name = fields[2];

            // Parse the packet before creating any flow, so a malformed row
            // never leaves a half-registered flow behind.
            Packet packet;
            packet.timestamp = parse_double(fields[3], "timestamp", line_number);
            packet.size = parse_number<int>(fields[4], "size", line_number);
            // from_chars accepts any int; constrain to the physical packet
            // domain so a corrupted size column cannot smuggle negative or
            // absurd values into the flowpic rasterizer.
            if (packet.size < 0 || packet.size > kMaxCsvPacketSize) {
                throw std::runtime_error(line_prefix(line_number) + "size " + fields[4] +
                                         " outside [0, " + std::to_string(kMaxCsvPacketSize) +
                                         "]");
            }
            if (fields[5] == "up") {
                packet.direction = Direction::upstream;
            } else if (fields[5] == "down") {
                packet.direction = Direction::downstream;
            } else {
                throw std::runtime_error(line_prefix(line_number) + "bad direction '" + fields[5] +
                                         "'");
            }
            packet.is_ack = fields[6] == "1";

            if (!flow_open || flow_id != current_flow) {
                if (!options.quarantine) {
                    if (flow_id != current_flow + 1) {
                        throw std::runtime_error(line_prefix(line_number) +
                                                 "flow_id must be contiguous ascending (got " +
                                                 std::to_string(flow_id) + " after " +
                                                 std::to_string(current_flow) + ")");
                    }
                } else if (seen_flow_ids.count(flow_id) > 0) {
                    throw std::runtime_error(line_prefix(line_number) + "flow_id " +
                                             std::to_string(flow_id) +
                                             " resumes after other flows (rows of one flow must "
                                             "be contiguous)");
                }
                // Vocabulary consistency is checked before the flow is
                // registered so a mismatch quarantines cleanly.
                if (label < dataset.class_names.size() && !dataset.class_names[label].empty() &&
                    dataset.class_names[label] != class_name) {
                    throw std::runtime_error(line_prefix(line_number) +
                                             "class name mismatch for label " +
                                             std::to_string(label) + " ('" + class_name +
                                             "' vs '" + dataset.class_names[label] + "')");
                }
                current_flow = flow_id;
                flow_open = true;
                seen_flow_ids.insert(flow_id);
                Flow flow;
                flow.label = label;
                flow.background = fields[7] == "1";
                dataset.flows.push_back(std::move(flow));
                // Grow the vocabulary as labels appear.
                if (label >= dataset.class_names.size()) {
                    dataset.class_names.resize(label + 1);
                }
                if (dataset.class_names[label].empty()) {
                    dataset.class_names[label] = class_name;
                }
            }
            dataset.flows.back().packets.push_back(packet);
            ++rep.rows_read;
        } catch (const std::runtime_error& error) {
            if (!options.quarantine) {
                throw;
            }
            rep.quarantined.push_back(BadRow{line_number, line, error.what()});
            if (rep.quarantined.size() > options.max_quarantined) {
                throw std::runtime_error("read_dataset_csv: more than " +
                                         std::to_string(options.max_quarantined) +
                                         " quarantined rows — input looks unusable (first: " +
                                         rep.quarantined.front().error + ")");
            }
        }
    }
    if (!rep.quarantined.empty()) {
        util::log_info("read_dataset_csv: quarantined " +
                       std::to_string(rep.quarantined.size()) + " bad row(s), kept " +
                       std::to_string(rep.rows_read) + " (first: " +
                       rep.quarantined.front().error + ")");
    }
    // Drop flows whose every packet row was quarantined: an empty flow
    // cannot be rasterized and would poison downstream campaigns.
    if (options.quarantine) {
        std::vector<Flow> kept;
        kept.reserve(dataset.flows.size());
        for (auto& flow : dataset.flows) {
            if (!flow.packets.empty()) {
                kept.push_back(std::move(flow));
            }
        }
        dataset.flows = std::move(kept);
    }
    // Fill any gaps in the vocabulary with placeholder names.
    for (std::size_t label = 0; label < dataset.class_names.size(); ++label) {
        if (dataset.class_names[label].empty()) {
            dataset.class_names[label] = "class-" + std::to_string(label);
        }
    }
    return dataset;
}

Dataset read_dataset_csv(std::istream& in)
{
    return read_dataset_csv(in, CsvReadOptions{}, nullptr);
}

Dataset read_dataset_csv(const std::string& path, const CsvReadOptions& options,
                         CsvReadReport* report)
{
    std::ifstream file(path);
    if (!file) {
        throw std::runtime_error("read_dataset_csv: cannot open " + path);
    }
    return read_dataset_csv(file, options, report);
}

Dataset read_dataset_csv(const std::string& path)
{
    return read_dataset_csv(path, CsvReadOptions{}, nullptr);
}

} // namespace fptc::flow
