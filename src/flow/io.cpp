#include "fptc/flow/io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace fptc::flow {

namespace {

constexpr const char* kHeader = "flow_id,label,class_name,timestamp,size,direction,is_ack,background";

[[nodiscard]] std::vector<std::string> split_fields(const std::string& line)
{
    std::vector<std::string> fields;
    std::string current;
    for (const char c : line) {
        if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (c != '\r') {
            current += c;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

template <typename T>
[[nodiscard]] T parse_number(const std::string& field, const char* what)
{
    T value{};
    const auto* begin = field.data();
    const auto* end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        throw std::runtime_error(std::string("read_dataset_csv: bad ") + what + " '" + field + "'");
    }
    return value;
}

[[nodiscard]] double parse_double(const std::string& field, const char* what)
{
    // std::from_chars<double> is not universally available; strtod suffices.
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size()) {
        throw std::runtime_error(std::string("read_dataset_csv: bad ") + what + " '" + field + "'");
    }
    return value;
}

} // namespace

void write_dataset_csv(const Dataset& dataset, std::ostream& out)
{
    out << kHeader << '\n';
    for (std::size_t flow_id = 0; flow_id < dataset.flows.size(); ++flow_id) {
        const auto& flow = dataset.flows[flow_id];
        const std::string& class_name = flow.label < dataset.class_names.size()
                                            ? dataset.class_names[flow.label]
                                            : std::string("class-") + std::to_string(flow.label);
        for (const auto& packet : flow.packets) {
            out << flow_id << ',' << flow.label << ',' << class_name << ',' << packet.timestamp
                << ',' << packet.size << ','
                << (packet.direction == Direction::upstream ? "up" : "down") << ','
                << (packet.is_ack ? 1 : 0) << ',' << (flow.background ? 1 : 0) << '\n';
        }
    }
    if (!out) {
        throw std::runtime_error("write_dataset_csv: stream failure");
    }
}

void write_dataset_csv(const Dataset& dataset, const std::string& path)
{
    std::ofstream file(path);
    if (!file) {
        throw std::runtime_error("write_dataset_csv: cannot open " + path);
    }
    write_dataset_csv(dataset, file);
}

Dataset read_dataset_csv(std::istream& in)
{
    std::string line;
    if (!std::getline(in, line)) {
        throw std::runtime_error("read_dataset_csv: empty input");
    }
    // Tolerate a UTF-8 BOM and trailing CR on the header.
    if (line.size() >= 3 && static_cast<unsigned char>(line[0]) == 0xEF) {
        line.erase(0, 3);
    }
    if (!line.empty() && line.back() == '\r') {
        line.pop_back();
    }
    if (line != kHeader) {
        throw std::runtime_error("read_dataset_csv: unexpected header '" + line + "'");
    }

    Dataset dataset;
    long current_flow = -1;
    std::size_t line_number = 1;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        const auto fields = split_fields(line);
        if (fields.size() != 8) {
            throw std::runtime_error("read_dataset_csv: line " + std::to_string(line_number) +
                                     ": expected 8 fields, got " + std::to_string(fields.size()));
        }
        const auto flow_id = parse_number<long>(fields[0], "flow_id");
        const auto label = parse_number<std::size_t>(fields[1], "label");
        const auto& class_name = fields[2];

        if (flow_id != current_flow) {
            if (flow_id != current_flow + 1) {
                throw std::runtime_error("read_dataset_csv: line " + std::to_string(line_number) +
                                         ": flow_id must be contiguous ascending");
            }
            current_flow = flow_id;
            Flow flow;
            flow.label = label;
            flow.background = fields[7] == "1";
            dataset.flows.push_back(std::move(flow));
            // Grow the vocabulary as labels appear.
            if (label >= dataset.class_names.size()) {
                dataset.class_names.resize(label + 1);
            }
            if (dataset.class_names[label].empty()) {
                dataset.class_names[label] = class_name;
            } else if (dataset.class_names[label] != class_name) {
                throw std::runtime_error("read_dataset_csv: line " + std::to_string(line_number) +
                                         ": class name mismatch for label " +
                                         std::to_string(label));
            }
        }

        Packet packet;
        packet.timestamp = parse_double(fields[3], "timestamp");
        packet.size = parse_number<int>(fields[4], "size");
        if (fields[5] == "up") {
            packet.direction = Direction::upstream;
        } else if (fields[5] == "down") {
            packet.direction = Direction::downstream;
        } else {
            throw std::runtime_error("read_dataset_csv: line " + std::to_string(line_number) +
                                     ": bad direction '" + fields[5] + "'");
        }
        packet.is_ack = fields[6] == "1";
        dataset.flows.back().packets.push_back(packet);
    }
    // Fill any gaps in the vocabulary with placeholder names.
    for (std::size_t label = 0; label < dataset.class_names.size(); ++label) {
        if (dataset.class_names[label].empty()) {
            dataset.class_names[label] = "class-" + std::to_string(label);
        }
    }
    return dataset;
}

Dataset read_dataset_csv(const std::string& path)
{
    std::ifstream file(path);
    if (!file) {
        throw std::runtime_error("read_dataset_csv: cannot open " + path);
    }
    return read_dataset_csv(file);
}

} // namespace fptc::flow
