// Flow feature extraction.
//
// Two feature families are used in the paper besides the flowpic:
//
// - Early time-series features for the ML baseline (Sec. 4.1.1): "the time
//   series of the packet size, direction and intertime of the first 10
//   packets of a flow (i.e., 3 features of 10 values each all concatenated
//   into 30 elements arrays)".
//
// - The 24-metric statistical vector that Rezaei & Liu [33] regress during
//   their semi-supervised pre-training (App. D.3), which our src/subflow
//   module reproduces for Table 9.
#pragma once

#include "fptc/flow/packet.hpp"

#include <array>
#include <cstddef>
#include <vector>

namespace fptc::flow {

/// Number of leading packets used by the early time-series representation.
inline constexpr std::size_t kEarlyPackets = 10;

/// Size of the early time-series feature vector (3 x 10).
inline constexpr std::size_t kEarlyFeatureSize = 3 * kEarlyPackets;

/// Extract the 30-element early time-series vector: sizes (normalized to
/// [0,1] by 1500), directions (+1 downstream / -1 upstream), inter-arrival
/// times (seconds).  Flows shorter than 10 packets are zero-padded.
[[nodiscard]] std::array<float, kEarlyFeatureSize> early_time_series(const Flow& flow);

/// Number of statistics in the Rezaei-style regression target vector.
inline constexpr std::size_t kFlowStatCount = 24;

/// Extract 24 flow statistics (per direction and overall: packet counts,
/// byte counts, min/mean/max/std of sizes and inter-arrival times, duration,
/// throughput).  All values are scaled to comparable magnitudes so that a
/// regression head can fit them without per-feature normalization.
[[nodiscard]] std::array<float, kFlowStatCount> flow_statistics(const Flow& flow);

/// Per-packet inter-arrival times (first entry 0).
[[nodiscard]] std::vector<double> inter_arrival_times(const Flow& flow);

} // namespace fptc::flow
