// Labeled flow dataset container + Table-2 style summaries.
//
// A Dataset owns a set of flows and the class-name vocabulary.  The summary
// helpers reproduce the columns of Table 2 of the paper (flow counts per
// class, imbalance ratio rho, mean packets per flow), which the
// dataset-curation example prints for each synthetic dataset.
#pragma once

#include "fptc/flow/packet.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace fptc::flow {

/// A labeled collection of flows sharing one class vocabulary.
struct Dataset {
    std::string name;                      ///< e.g. "ucdavis19/pretraining"
    std::vector<std::string> class_names;  ///< label index -> human name
    std::vector<Flow> flows;

    [[nodiscard]] std::size_t num_classes() const noexcept { return class_names.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return flows.size(); }

    /// Number of flows per class.
    [[nodiscard]] std::vector<std::size_t> class_counts() const;

    /// Indices of all flows with the given label.
    [[nodiscard]] std::vector<std::size_t> indices_of_class(std::size_t label) const;
};

/// Table-2 style per-dataset summary.
struct DatasetSummary {
    std::size_t classes = 0;
    std::size_t flows_all = 0;
    std::size_t flows_min = 0;  ///< smallest class
    std::size_t flows_max = 0;  ///< largest class
    double rho = 0.0;           ///< max/min imbalance ratio
    double mean_packets = 0.0;  ///< average packets per flow
};

[[nodiscard]] DatasetSummary summarize(const Dataset& dataset);

/// Render one or more dataset summaries as a Table-2 style text table.
[[nodiscard]] std::string render_summaries(const std::vector<Dataset>& datasets);

} // namespace fptc::flow
