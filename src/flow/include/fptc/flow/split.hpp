// Train/validation/test split construction.
//
// The paper uses three split protocols (Sec. 3.4 and 4.2.1):
//
// - UCDAVIS19: k=5 folds of exactly 100 samples per class drawn without
//   replacement from the `pretraining` partition; each fold is further split
//   80/20 into train/validation s=3 times; samples not in the fold form the
//   "leftover" test set of Table 4.
// - MIRAGE/UTMOBILENET replication: 5 random 80%/20% train/test splits, or
//   the 80/10/10 train/validation/test protocol of Sec. 4.5.1.
//
// Splits are index-based so no flow data is copied until materialization.
#pragma once

#include "fptc/flow/dataset.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fptc::flow {

/// Index-based split of one dataset.
struct Split {
    std::vector<std::size_t> train;
    std::vector<std::size_t> validation;
    std::vector<std::size_t> test;
};

/// Draw `per_class` sample indices per class without replacement.  Throws
/// std::invalid_argument when a class has fewer than `per_class` samples.
/// The remaining indices are returned in Split::test ("leftover" set);
/// Split::validation is empty (use train_validation_split on the result).
[[nodiscard]] Split fixed_per_class_split(const Dataset& dataset, std::size_t per_class,
                                          std::uint64_t seed);

/// Split an index list into train/validation with the given train fraction
/// (the paper's 80/20 rule), shuffling with `seed`.
[[nodiscard]] Split train_validation_split(const std::vector<std::size_t>& indices,
                                           double train_fraction, std::uint64_t seed);

/// Stratified fractional split: per class, `train_fraction` goes to train,
/// `validation_fraction` to validation, the remainder to test (80/10/10 when
/// called with 0.8, 0.1).  Fractions must sum to <= 1.
[[nodiscard]] Split stratified_split(const Dataset& dataset, double train_fraction,
                                     double validation_fraction, std::uint64_t seed);

/// Materialize a subset of the dataset by indices (labels preserved).
[[nodiscard]] Dataset subset(const Dataset& dataset, const std::vector<std::size_t>& indices);

} // namespace fptc::flow
