// Packet time-series flow representation.
//
// All four datasets in the paper "provide per-packet time series for the
// whole flows duration, which is a key requirement for composing flowpic
// representations" (Sec. 3.4).  A Flow here is exactly that: the ordered
// (timestamp, size, direction) series of one bidirectional 5-tuple, plus the
// curation metadata the paper's pipeline needs (ACK flags for the MIRAGE ACK
// removal, a background-traffic flag for the netstat-based filtering).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fptc::flow {

/// Traffic direction relative to the flow initiator.  The flowpic of the
/// Ref-Paper ignores direction ("Traffic directionality is not considered
/// when composing the flowpic", footnote 3) but the time-series features of
/// the ML baseline and of Rezaei & Liu's subflows use it.
enum class Direction { upstream, downstream };

/// One packet observation.
struct Packet {
    double timestamp = 0.0;                      ///< seconds since flow start
    int size = 0;                                ///< L3 packet size in bytes [0, 1500]
    Direction direction = Direction::downstream; ///< relative to flow initiator
    bool is_ack = false;                         ///< bare TCP ACK (no payload)
};

/// Maximum packet size considered by the flowpic representation.
inline constexpr int kMaxPacketSize = 1500;

/// A labeled flow: the packet series plus curation metadata.
struct Flow {
    std::vector<Packet> packets;
    std::size_t label = 0;      ///< class index within the owning dataset
    bool background = false;    ///< background traffic (netd, SSDP, ...) to be curated away

    /// Duration between first and last packet (0 for <2 packets).
    [[nodiscard]] double duration() const noexcept
    {
        return packets.size() < 2 ? 0.0 : packets.back().timestamp - packets.front().timestamp;
    }

    /// Total bytes across all packets.
    [[nodiscard]] std::size_t total_bytes() const noexcept
    {
        std::size_t bytes = 0;
        for (const auto& p : packets) {
            bytes += static_cast<std::size_t>(p.size > 0 ? p.size : 0);
        }
        return bytes;
    }
};

} // namespace fptc::flow
