// Dataset curation filters.
//
// Section 3.4 of the paper describes the curation applied to the replication
// datasets: "we filter out flows with less than 10 packets and remove
// classes with less than 100 samples. [...] for MIRAGE-19 and MIRAGE-22 we
// also first removed TCP ACK packets from time series and then discarded
// flows related to background traffic."  Each of those steps is one function
// here so the trafficgen dataset builders can compose them exactly as the
// paper does (including the >1000-packet MIRAGE-22 variant).
#pragma once

#include "fptc/flow/dataset.hpp"

#include <cstddef>

namespace fptc::flow {

/// Remove bare-ACK packets from every flow (MIRAGE curation step).
[[nodiscard]] Dataset remove_ack_packets(Dataset dataset);

/// Drop flows flagged as background traffic (netd daemon, SSDP, ...).
[[nodiscard]] Dataset remove_background_flows(Dataset dataset);

/// Keep only flows with strictly more than `min_packets` packets
/// (paper: ">10pkts" and ">1000pkts" variants).
[[nodiscard]] Dataset filter_min_packets(Dataset dataset, std::size_t min_packets);

/// Drop classes with fewer than `min_samples` flows and re-index the labels
/// compactly (paper: "remove classes with less than 100 samples").
[[nodiscard]] Dataset drop_small_classes(Dataset dataset, std::size_t min_samples);

/// Truncate every flow to its first `seconds` of traffic (the flowpic uses
/// only the first 15 s; exposing the step separately lets tests check it).
[[nodiscard]] Dataset truncate_duration(Dataset dataset, double seconds);

} // namespace fptc::flow
