// Dataset (de)serialization: a monolithic CSV flow format.
//
// The paper consolidates each dataset's "collection of files (in either CSV
// or JSON format) ... into 'monolithic' parquet files" (Sec. 3.4).  This
// module is the equivalent interchange layer here: one CSV holding every
// packet of every flow, so that (i) synthetic datasets can be exported for
// inspection with standard tools, and (ii) users with *real* captures
// (e.g. the actual UCDAVIS19 per-flow CSVs) can feed them into the library
// and run every campaign on real data.
//
// Format (header + one row per packet):
//   flow_id,label,class_name,timestamp,size,direction,is_ack,background
// with direction "up"/"down", booleans 0/1, timestamps in seconds.  Rows of
// one flow must be contiguous; flows appear in ascending flow_id order.
#pragma once

#include "fptc/flow/dataset.hpp"

#include <iosfwd>
#include <string>

namespace fptc::flow {

/// Serialize a dataset to the monolithic CSV format.
void write_dataset_csv(const Dataset& dataset, std::ostream& out);
void write_dataset_csv(const Dataset& dataset, const std::string& path);

/// Parse a dataset back.  Class names are rebuilt from the class_name
/// column (label indices must be consistent with it).  Throws
/// std::runtime_error on malformed input.
[[nodiscard]] Dataset read_dataset_csv(std::istream& in);
[[nodiscard]] Dataset read_dataset_csv(const std::string& path);

} // namespace fptc::flow
