// Dataset (de)serialization: a monolithic CSV flow format.
//
// The paper consolidates each dataset's "collection of files (in either CSV
// or JSON format) ... into 'monolithic' parquet files" (Sec. 3.4).  This
// module is the equivalent interchange layer here: one CSV holding every
// packet of every flow, so that (i) synthetic datasets can be exported for
// inspection with standard tools, and (ii) users with *real* captures
// (e.g. the actual UCDAVIS19 per-flow CSVs) can feed them into the library
// and run every campaign on real data.
//
// Format (header + one row per packet):
//   flow_id,label,class_name,timestamp,size,direction,is_ack,background
// with direction "up"/"down", booleans 0/1, timestamps in seconds.  Rows of
// one flow must be contiguous; flows appear in ascending flow_id order.
#pragma once

#include "fptc/flow/dataset.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace fptc::flow {

/// Serialize a dataset to the monolithic CSV format.
void write_dataset_csv(const Dataset& dataset, std::ostream& out);
void write_dataset_csv(const Dataset& dataset, const std::string& path);

/// A row rejected by the quarantine-and-continue reader.
struct BadRow {
    std::size_t line_number = 0;  ///< 1-based, counting the header as line 1
    std::string line;             ///< raw row content
    std::string error;            ///< why it was rejected
};

/// Outcome details of a lenient read.
struct CsvReadReport {
    std::vector<BadRow> quarantined;  ///< rejected rows, in file order
    std::size_t rows_read = 0;        ///< accepted packet rows
    std::size_t injected_faults = 0;  ///< rows mangled by the fault injector
};

/// Parse behavior knobs.
struct CsvReadOptions {
    /// Collect malformed rows (with their 1-based line numbers) into the
    /// report and keep parsing, instead of throwing on the first one.  Flow
    /// ids need not be contiguous in this mode: rows of a quarantined flow
    /// head still attach to a usable dataset.
    bool quarantine = false;
    /// Hard cap on quarantined rows: beyond this the file is considered
    /// unusable and the reader throws even in quarantine mode.
    std::size_t max_quarantined = 10000;
};

/// Parse a dataset back.  Class names are rebuilt from the class_name
/// column (label indices must be consistent with it).  The header row is
/// validated column-by-column; every error message carries the 1-based
/// line number.  Strict mode (default) throws std::runtime_error on the
/// first malformed row; quarantine mode collects bad rows into `report`
/// and continues.
[[nodiscard]] Dataset read_dataset_csv(std::istream& in);
[[nodiscard]] Dataset read_dataset_csv(const std::string& path);
[[nodiscard]] Dataset read_dataset_csv(std::istream& in, const CsvReadOptions& options,
                                       CsvReadReport* report = nullptr);
[[nodiscard]] Dataset read_dataset_csv(const std::string& path, const CsvReadOptions& options,
                                       CsvReadReport* report = nullptr);

} // namespace fptc::flow
