#include "fptc/flow/filters.hpp"

#include <algorithm>
#include <utility>

namespace fptc::flow {

Dataset remove_ack_packets(Dataset dataset)
{
    for (auto& flow : dataset.flows) {
        std::erase_if(flow.packets, [](const Packet& p) { return p.is_ack; });
    }
    return dataset;
}

Dataset remove_background_flows(Dataset dataset)
{
    std::erase_if(dataset.flows, [](const Flow& f) { return f.background; });
    return dataset;
}

Dataset filter_min_packets(Dataset dataset, std::size_t min_packets)
{
    std::erase_if(dataset.flows,
                  [min_packets](const Flow& f) { return f.packets.size() <= min_packets; });
    return dataset;
}

Dataset drop_small_classes(Dataset dataset, std::size_t min_samples)
{
    const auto counts = dataset.class_counts();
    std::vector<std::size_t> remap(counts.size(), static_cast<std::size_t>(-1));
    std::vector<std::string> kept_names;
    for (std::size_t label = 0; label < counts.size(); ++label) {
        if (counts[label] >= min_samples) {
            remap[label] = kept_names.size();
            kept_names.push_back(dataset.class_names[label]);
        }
    }
    std::erase_if(dataset.flows, [&](const Flow& f) {
        return f.label >= remap.size() || remap[f.label] == static_cast<std::size_t>(-1);
    });
    for (auto& flow : dataset.flows) {
        flow.label = remap[flow.label];
    }
    dataset.class_names = std::move(kept_names);
    return dataset;
}

Dataset truncate_duration(Dataset dataset, double seconds)
{
    for (auto& flow : dataset.flows) {
        if (flow.packets.empty()) {
            continue;
        }
        const double start = flow.packets.front().timestamp;
        const auto cut =
            std::find_if(flow.packets.begin(), flow.packets.end(),
                         [&](const Packet& p) { return p.timestamp - start > seconds; });
        flow.packets.erase(cut, flow.packets.end());
    }
    return dataset;
}

} // namespace fptc::flow
