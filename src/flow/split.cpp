#include "fptc/flow/split.hpp"

#include "fptc/util/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace fptc::flow {

Split fixed_per_class_split(const Dataset& dataset, std::size_t per_class, std::uint64_t seed)
{
    util::Rng rng(seed);
    Split split;
    std::vector<bool> selected(dataset.flows.size(), false);
    for (std::size_t label = 0; label < dataset.num_classes(); ++label) {
        const auto class_indices = dataset.indices_of_class(label);
        if (class_indices.size() < per_class) {
            throw std::invalid_argument("fixed_per_class_split: class '" +
                                        dataset.class_names[label] + "' has only " +
                                        std::to_string(class_indices.size()) + " samples");
        }
        const auto chosen = rng.sample_without_replacement(class_indices.size(), per_class);
        for (const auto local : chosen) {
            split.train.push_back(class_indices[local]);
            selected[class_indices[local]] = true;
        }
    }
    for (std::size_t i = 0; i < dataset.flows.size(); ++i) {
        if (!selected[i]) {
            split.test.push_back(i); // "leftover" samples
        }
    }
    return split;
}

Split train_validation_split(const std::vector<std::size_t>& indices, double train_fraction,
                             std::uint64_t seed)
{
    if (!(train_fraction > 0.0 && train_fraction <= 1.0)) {
        throw std::invalid_argument("train_validation_split: bad fraction");
    }
    util::Rng rng(seed);
    std::vector<std::size_t> shuffled = indices;
    rng.shuffle(shuffled);
    const auto train_count =
        static_cast<std::size_t>(train_fraction * static_cast<double>(shuffled.size()) + 0.5);
    Split split;
    split.train.assign(shuffled.begin(),
                       shuffled.begin() + static_cast<std::ptrdiff_t>(std::min(train_count, shuffled.size())));
    split.validation.assign(shuffled.begin() + static_cast<std::ptrdiff_t>(split.train.size()),
                            shuffled.end());
    return split;
}

Split stratified_split(const Dataset& dataset, double train_fraction, double validation_fraction,
                       std::uint64_t seed)
{
    if (train_fraction < 0.0 || validation_fraction < 0.0 ||
        train_fraction + validation_fraction > 1.0) {
        throw std::invalid_argument("stratified_split: bad fractions");
    }
    util::Rng rng(seed);
    Split split;
    for (std::size_t label = 0; label < dataset.num_classes(); ++label) {
        auto class_indices = dataset.indices_of_class(label);
        rng.shuffle(class_indices);
        const auto n = class_indices.size();
        const auto n_train = static_cast<std::size_t>(train_fraction * static_cast<double>(n) + 0.5);
        const auto n_val =
            static_cast<std::size_t>(validation_fraction * static_cast<double>(n) + 0.5);
        for (std::size_t i = 0; i < n; ++i) {
            if (i < n_train) {
                split.train.push_back(class_indices[i]);
            } else if (i < n_train + n_val) {
                split.validation.push_back(class_indices[i]);
            } else {
                split.test.push_back(class_indices[i]);
            }
        }
    }
    return split;
}

Dataset subset(const Dataset& dataset, const std::vector<std::size_t>& indices)
{
    Dataset out;
    out.name = dataset.name;
    out.class_names = dataset.class_names;
    out.flows.reserve(indices.size());
    for (const auto i : indices) {
        out.flows.push_back(dataset.flows.at(i));
    }
    return out;
}

} // namespace fptc::flow
