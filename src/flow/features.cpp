#include "fptc/flow/features.hpp"

#include <algorithm>
#include <cmath>

namespace fptc::flow {

std::array<float, kEarlyFeatureSize> early_time_series(const Flow& flow)
{
    std::array<float, kEarlyFeatureSize> features{};
    const std::size_t count = std::min(flow.packets.size(), kEarlyPackets);
    for (std::size_t i = 0; i < count; ++i) {
        const auto& packet = flow.packets[i];
        features[i] = static_cast<float>(packet.size) / static_cast<float>(kMaxPacketSize);
        features[kEarlyPackets + i] = packet.direction == Direction::downstream ? 1.0f : -1.0f;
        if (i > 0) {
            features[2 * kEarlyPackets + i] =
                static_cast<float>(packet.timestamp - flow.packets[i - 1].timestamp);
        }
    }
    return features;
}

std::vector<double> inter_arrival_times(const Flow& flow)
{
    std::vector<double> iats(flow.packets.size(), 0.0);
    for (std::size_t i = 1; i < flow.packets.size(); ++i) {
        iats[i] = flow.packets[i].timestamp - flow.packets[i - 1].timestamp;
    }
    return iats;
}

namespace {

struct RunningStats {
    double min_value = 0.0;
    double max_value = 0.0;
    double mean_value = 0.0;
    double std_value = 0.0;

    static RunningStats of(const std::vector<double>& values)
    {
        RunningStats stats;
        if (values.empty()) {
            return stats;
        }
        stats.min_value = values.front();
        stats.max_value = values.front();
        double total = 0.0;
        for (const double v : values) {
            stats.min_value = std::min(stats.min_value, v);
            stats.max_value = std::max(stats.max_value, v);
            total += v;
        }
        stats.mean_value = total / static_cast<double>(values.size());
        double sum_sq = 0.0;
        for (const double v : values) {
            const double d = v - stats.mean_value;
            sum_sq += d * d;
        }
        stats.std_value = std::sqrt(sum_sq / static_cast<double>(values.size()));
        return stats;
    }
};

} // namespace

std::array<float, kFlowStatCount> flow_statistics(const Flow& flow)
{
    std::array<float, kFlowStatCount> stats{};
    if (flow.packets.empty()) {
        return stats;
    }

    std::vector<double> sizes;
    std::vector<double> up_sizes;
    std::vector<double> down_sizes;
    sizes.reserve(flow.packets.size());
    for (const auto& packet : flow.packets) {
        sizes.push_back(static_cast<double>(packet.size));
        if (packet.direction == Direction::upstream) {
            up_sizes.push_back(static_cast<double>(packet.size));
        } else {
            down_sizes.push_back(static_cast<double>(packet.size));
        }
    }
    const auto iats = inter_arrival_times(flow);
    const auto size_stats = RunningStats::of(sizes);
    const auto up_stats = RunningStats::of(up_sizes);
    const auto down_stats = RunningStats::of(down_sizes);
    const auto iat_stats = RunningStats::of(iats);

    const double duration = flow.duration();
    const double total_bytes = static_cast<double>(flow.total_bytes());
    const double pkt_count = static_cast<double>(flow.packets.size());

    // Scales keep every entry roughly O(1) for the regression head:
    // sizes /1500, counts /1000, durations /15s, throughput /1e6 B/s.
    constexpr double size_scale = 1.0 / 1500.0;
    constexpr double count_scale = 1.0 / 1000.0;
    constexpr double time_scale = 1.0 / 15.0;
    constexpr double bytes_scale = 1.0 / 1.5e6;

    std::size_t i = 0;
    const auto put = [&](double v) { stats[i++] = static_cast<float>(v); };

    put(pkt_count * count_scale);                              // 1 total packets
    put(static_cast<double>(up_sizes.size()) * count_scale);   // 2 upstream packets
    put(static_cast<double>(down_sizes.size()) * count_scale); // 3 downstream packets
    put(total_bytes * bytes_scale);                            // 4 total bytes
    put(size_stats.min_value * size_scale);                    // 5-8 size stats
    put(size_stats.mean_value * size_scale);
    put(size_stats.max_value * size_scale);
    put(size_stats.std_value * size_scale);
    put(up_stats.min_value * size_scale);                      // 9-12 upstream size stats
    put(up_stats.mean_value * size_scale);
    put(up_stats.max_value * size_scale);
    put(up_stats.std_value * size_scale);
    put(down_stats.min_value * size_scale);                    // 13-16 downstream size stats
    put(down_stats.mean_value * size_scale);
    put(down_stats.max_value * size_scale);
    put(down_stats.std_value * size_scale);
    put(iat_stats.min_value * time_scale);                     // 17-20 inter-arrival stats
    put(iat_stats.mean_value * time_scale);
    put(iat_stats.max_value * time_scale);
    put(iat_stats.std_value * time_scale);
    put(duration * time_scale);                                // 21 duration
    put(duration > 0.0 ? total_bytes / duration * bytes_scale * time_scale : 0.0); // 22 throughput
    put(pkt_count > 0.0 ? static_cast<double>(down_sizes.size()) / pkt_count : 0.0); // 23 down ratio
    put(duration > 0.0 ? pkt_count / duration * count_scale : 0.0); // 24 packet rate

    return stats;
}

} // namespace fptc::flow
