#include "fptc/subflow/subflow.hpp"

#include "fptc/nn/layers.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace fptc::subflow {

std::string sampling_method_name(SamplingMethod method)
{
    switch (method) {
    case SamplingMethod::fixed_step:
        return "Fixed";
    case SamplingMethod::random:
        return "Rand";
    case SamplingMethod::incremental:
        return "Incre";
    }
    return "unknown";
}

std::vector<float> sample_subflow(const flow::Flow& flow, SamplingMethod method,
                                  const SubflowConfig& config, util::Rng& rng)
{
    const std::size_t length = config.subflow_length;
    std::vector<std::size_t> picks;
    picks.reserve(length);
    const std::size_t n = flow.packets.size();
    if (n > 0) {
        switch (method) {
        case SamplingMethod::fixed_step: {
            // One packet every `stride`, from a random starting point.
            const std::size_t max_stride = std::max<std::size_t>(1, n / length);
            const auto stride = static_cast<std::size_t>(
                rng.uniform_int(1, static_cast<std::int64_t>(max_stride)));
            const std::size_t span = stride * (length - 1) + 1;
            const std::size_t max_start = n > span ? n - span : 0;
            const auto start = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(max_start)));
            for (std::size_t i = 0; i < length; ++i) {
                const std::size_t idx = start + i * stride;
                if (idx >= n) {
                    break;
                }
                picks.push_back(idx);
            }
            break;
        }
        case SamplingMethod::random: {
            auto chosen = rng.sample_without_replacement(n, std::min(length, n));
            std::sort(chosen.begin(), chosen.end());
            picks = std::move(chosen);
            break;
        }
        case SamplingMethod::incremental: {
            // A consecutive window from a random starting point.
            const std::size_t max_start = n > length ? n - length : 0;
            const auto start = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(max_start)));
            for (std::size_t i = 0; i < length && start + i < n; ++i) {
                picks.push_back(start + i);
            }
            break;
        }
        }
    }

    std::vector<float> features(subflow_feature_size(config), 0.0f);
    for (std::size_t i = 0; i < picks.size(); ++i) {
        const auto& packet = flow.packets[picks[i]];
        features[i] = static_cast<float>(packet.size) / static_cast<float>(flow::kMaxPacketSize);
        features[length + i] =
            packet.direction == flow::Direction::downstream ? 1.0f : -1.0f;
        if (i > 0) {
            const double iat =
                flow.packets[picks[i]].timestamp - flow.packets[picks[i - 1]].timestamp;
            features[2 * length + i] = static_cast<float>(std::min(iat, 15.0) / 15.0);
        }
    }
    return features;
}

namespace {

/// Mean squared error with gradient.
[[nodiscard]] nn::LossResult mse(const nn::Tensor& predictions, const nn::Tensor& targets)
{
    nn::require_same_shape(predictions, targets, "mse");
    nn::LossResult result;
    result.grad = nn::Tensor(predictions.shape());
    const auto p = predictions.data();
    const auto t = targets.data();
    auto g = result.grad.data();
    double total = 0.0;
    const double inv = 1.0 / static_cast<double>(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        const double diff = static_cast<double>(p[i]) - static_cast<double>(t[i]);
        total += diff * diff;
        g[i] = static_cast<float>(2.0 * diff * inv);
    }
    result.loss = total * inv;
    return result;
}

} // namespace

SubflowModel::SubflowModel(SubflowModelConfig config, std::size_t num_classes,
                           SamplingMethod method)
    : config_(config), num_classes_(num_classes), method_(method), rng_(config.seed)
{
    const std::size_t input = subflow_feature_size(config_.subflow);
    trunk_.add(std::make_unique<nn::Linear>(input, config_.hidden1,
                                            util::mix_seed(config_.seed, 1)));
    trunk_.add(std::make_unique<nn::ReLU>());
    trunk_.add(std::make_unique<nn::Linear>(config_.hidden1, config_.hidden2,
                                            util::mix_seed(config_.seed, 2)));
    trunk_.add(std::make_unique<nn::ReLU>());

    regression_.add(std::make_unique<nn::Linear>(config_.hidden2, flow::kFlowStatCount,
                                                 util::mix_seed(config_.seed, 3)));

    // "3 linear layers are stacked as classifier" [33].
    classifier_.add(std::make_unique<nn::Linear>(config_.hidden2, 64,
                                                 util::mix_seed(config_.seed, 4)));
    classifier_.add(std::make_unique<nn::ReLU>());
    classifier_.add(std::make_unique<nn::Linear>(64, 32, util::mix_seed(config_.seed, 5)));
    classifier_.add(std::make_unique<nn::ReLU>());
    classifier_.add(std::make_unique<nn::Linear>(32, num_classes,
                                                 util::mix_seed(config_.seed, 6)));
}

nn::Tensor SubflowModel::embed(const nn::Tensor& input, bool training)
{
    return trunk_.forward(input, training);
}

double SubflowModel::pretrain(std::span<const flow::Flow> flows)
{
    if (flows.empty()) {
        throw std::invalid_argument("SubflowModel::pretrain: no flows");
    }
    auto params = trunk_.parameters();
    const auto head_params = regression_.parameters();
    params.insert(params.end(), head_params.begin(), head_params.end());
    nn::Adam optimizer(params, config_.pretrain_lr);

    const std::size_t input_size = subflow_feature_size(config_.subflow);
    std::vector<std::size_t> order(flows.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    double last_loss = 0.0;
    for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
        rng_.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
            const std::size_t end = std::min(start + config_.batch_size, order.size());
            const std::size_t batch = end - start;
            nn::Tensor inputs({batch, input_size});
            nn::Tensor targets({batch, flow::kFlowStatCount});
            auto in = inputs.data();
            auto tg = targets.data();
            for (std::size_t i = 0; i < batch; ++i) {
                const auto& flow = flows[order[start + i]];
                const auto features = sample_subflow(flow, method_, config_.subflow, rng_);
                std::copy(features.begin(), features.end(),
                          in.begin() + static_cast<std::ptrdiff_t>(i * input_size));
                const auto statistics = flow::flow_statistics(flow);
                std::copy(statistics.begin(), statistics.end(),
                          tg.begin() + static_cast<std::ptrdiff_t>(i * flow::kFlowStatCount));
            }
            const auto h = trunk_.forward(inputs, /*training=*/true);
            const auto predictions = regression_.forward(h, /*training=*/true);
            const auto loss = mse(predictions, targets);
            trunk_.zero_grad();
            regression_.zero_grad();
            const auto grad_h = regression_.backward(loss.grad);
            (void)trunk_.backward(grad_h);
            optimizer.step();
            epoch_loss += loss.loss;
            ++batches;
        }
        last_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    }
    return last_loss;
}

double SubflowModel::finetune(const flow::Dataset& dataset, std::size_t per_class,
                              std::uint64_t seed)
{
    util::Rng pick_rng(seed);
    // Select per-class labeled flows.
    std::vector<const flow::Flow*> labeled;
    for (std::size_t label = 0; label < dataset.num_classes(); ++label) {
        auto indices = dataset.indices_of_class(label);
        pick_rng.shuffle(indices);
        const std::size_t take = std::min(per_class, indices.size());
        for (std::size_t i = 0; i < take; ++i) {
            labeled.push_back(&dataset.flows[indices[i]]);
        }
    }
    if (labeled.empty()) {
        throw std::invalid_argument("SubflowModel::finetune: no labeled flows");
    }

    // Expand each labeled flow into several subflows (the sampling *is* the
    // data augmentation in [33]).
    const std::size_t input_size = subflow_feature_size(config_.subflow);
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    for (const auto* flow : labeled) {
        for (std::size_t s = 0; s < config_.subflow.samples_per_flow; ++s) {
            features.push_back(sample_subflow(*flow, method_, config_.subflow, pick_rng));
            labels.push_back(flow->label);
        }
    }

    nn::Adam optimizer(classifier_.parameters(), config_.finetune_lr);
    std::vector<std::size_t> order(features.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    double last_loss = 0.0;
    for (int epoch = 0; epoch < config_.finetune_epochs; ++epoch) {
        pick_rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
            const std::size_t end = std::min(start + config_.batch_size, order.size());
            const std::size_t batch = end - start;
            nn::Tensor inputs({batch, input_size});
            std::vector<std::size_t> batch_labels(batch);
            auto in = inputs.data();
            for (std::size_t i = 0; i < batch; ++i) {
                const auto& f = features[order[start + i]];
                std::copy(f.begin(), f.end(),
                          in.begin() + static_cast<std::ptrdiff_t>(i * input_size));
                batch_labels[i] = labels[order[start + i]];
            }
            // Trunk is frozen: forward without accumulating its gradients.
            const auto h = embed(inputs, /*training=*/false);
            const auto logits = classifier_.forward(h, /*training=*/true);
            const auto loss = nn::cross_entropy(logits, batch_labels);
            classifier_.zero_grad();
            (void)classifier_.backward(loss.grad);
            optimizer.step();
            epoch_loss += loss.loss;
            ++batches;
        }
        last_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    }
    return last_loss;
}

stats::ConfusionMatrix SubflowModel::evaluate(const flow::Dataset& dataset)
{
    stats::ConfusionMatrix confusion(num_classes_);
    const std::size_t input_size = subflow_feature_size(config_.subflow);
    for (const auto& flow : dataset.flows) {
        // Majority vote over this flow's subflows.
        std::vector<std::size_t> votes(num_classes_, 0);
        const std::size_t samples = config_.subflow.samples_per_flow;
        nn::Tensor inputs({samples, input_size});
        auto in = inputs.data();
        for (std::size_t s = 0; s < samples; ++s) {
            const auto features = sample_subflow(flow, method_, config_.subflow, rng_);
            std::copy(features.begin(), features.end(),
                      in.begin() + static_cast<std::ptrdiff_t>(s * input_size));
        }
        const auto h = embed(inputs, /*training=*/false);
        const auto logits = classifier_.forward(h, /*training=*/false);
        for (const auto prediction : nn::argmax_rows(logits)) {
            ++votes[prediction];
        }
        const auto winner = static_cast<std::size_t>(
            std::max_element(votes.begin(), votes.end()) - votes.begin());
        confusion.add(flow.label, winner);
    }
    return confusion;
}

} // namespace fptc::subflow
