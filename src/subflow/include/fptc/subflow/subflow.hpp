// Reproduction of Rezaei & Liu's subflow-sampling semi-supervised method.
//
// Appendix D.3 of the paper reproduces [33] to rule out errors in the
// UCDAVIS19 handling: "for each flow, 3 different sampling methods (i.e.,
// random sampling, fixed step sampling, and incremental sampling) are
// applied respectively up to 100 times to generate multiple short 'subflow'
// time-series, thus augmenting the data set.  For self-supervised
// pre-training on the entire pre-training partition, the authors used a
// statistical features regression task.  For supervised fine-tuning, 3
// linear layers are stacked as classifier ... trained with up to 20 labeled
// flows."  Table 9 compares the three sampling methods when fine-tuning
// with 10 samples on script and human.
//
// Pipeline here: subflows of L packets -> (size, direction, inter-arrival)
// features -> MLP trunk; pre-train with a 24-statistic regression head
// (flow::flow_statistics); fine-tune a 3-layer classifier head on frozen
// trunk features; classify flows by majority vote over their subflows.
#pragma once

#include "fptc/flow/dataset.hpp"
#include "fptc/flow/features.hpp"
#include "fptc/nn/sequential.hpp"
#include "fptc/stats/metrics.hpp"
#include "fptc/util/rng.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace fptc::subflow {

/// The three sampling policies of [33] / Table 9.
enum class SamplingMethod { fixed_step, random, incremental };

[[nodiscard]] std::string sampling_method_name(SamplingMethod method);

/// Subflow extraction parameters.
struct SubflowConfig {
    std::size_t subflow_length = 20;  ///< packets per subflow
    std::size_t samples_per_flow = 8; ///< subflows drawn per flow ([33]: up to 100)
};

/// Feature size of one subflow: (size, direction, inter-arrival) x length.
[[nodiscard]] constexpr std::size_t subflow_feature_size(const SubflowConfig& config) noexcept
{
    return 3 * config.subflow_length;
}

/// Extract one subflow feature vector with the given policy.  Flows shorter
/// than the subflow length are zero-padded.
[[nodiscard]] std::vector<float> sample_subflow(const flow::Flow& flow, SamplingMethod method,
                                                const SubflowConfig& config, util::Rng& rng);

/// Model hyper-parameters.
struct SubflowModelConfig {
    SubflowConfig subflow{};
    std::size_t hidden1 = 256;
    std::size_t hidden2 = 128; ///< representation width
    int pretrain_epochs = 10;
    int finetune_epochs = 60;
    double pretrain_lr = 1e-3;
    double finetune_lr = 1e-2;
    std::size_t batch_size = 64;
    std::uint64_t seed = 33;
};

/// The semi-supervised model: trunk + regression head (pre-training) +
/// 3-layer classifier head (fine-tuning).
class SubflowModel {
public:
    SubflowModel(SubflowModelConfig config, std::size_t num_classes, SamplingMethod method);

    /// Self-supervised pre-training: regress the parent flow's 24 statistics
    /// from each subflow.  Returns the final epoch's mean squared error.
    double pretrain(std::span<const flow::Flow> flows);

    /// Fine-tune the classifier head on `per_class` labeled flows per class
    /// (trunk frozen).  Returns the final training loss.
    double finetune(const flow::Dataset& dataset, std::size_t per_class, std::uint64_t seed);

    /// Classify flows by majority vote over their subflows.
    [[nodiscard]] stats::ConfusionMatrix evaluate(const flow::Dataset& dataset);

    [[nodiscard]] SamplingMethod method() const noexcept { return method_; }

private:
    /// Trunk forward over a batch of subflow features [B, 3L] -> [B, hidden2].
    [[nodiscard]] nn::Tensor embed(const nn::Tensor& input, bool training);

    SubflowModelConfig config_;
    std::size_t num_classes_;
    SamplingMethod method_;
    nn::Sequential trunk_;       ///< 3L -> h1 -> h2 representation
    nn::Sequential regression_;  ///< h2 -> 24 statistics
    nn::Sequential classifier_;  ///< h2 -> 64 -> 32 -> classes
    util::Rng rng_;
};

} // namespace fptc::subflow
