#include "fptc/util/table.hpp"

#include "fptc/util/durable.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace fptc::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void Table::add_footnote(std::string note)
{
    footnotes_.push_back(std::move(note));
}

namespace {

[[nodiscard]] std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                                     const std::vector<std::vector<std::string>>& rows)
{
    std::size_t columns = header.size();
    for (const auto& row : rows) {
        columns = std::max(columns, row.size());
    }
    std::vector<std::size_t> widths(columns, 0);
    for (std::size_t c = 0; c < header.size(); ++c) {
        widths[c] = header[c].size();
    }
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    return widths;
}

void append_padded(std::ostringstream& out, const std::string& cell, std::size_t width)
{
    out << cell;
    for (std::size_t i = cell.size(); i < width; ++i) {
        out << ' ';
    }
}

} // namespace

std::string Table::to_string() const
{
    const auto widths = column_widths(header_, rows_);
    std::ostringstream out;
    if (!title_.empty()) {
        out << title_ << '\n';
    }
    std::size_t total = 0;
    for (const auto w : widths) {
        total += w + 3;
    }
    const std::string rule(total > 1 ? total - 1 : 1, '-');
    if (!header_.empty()) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            append_padded(out, c < header_.size() ? header_[c] : std::string{}, widths[c]);
            if (c + 1 < widths.size()) {
                out << " | ";
            }
        }
        out << '\n' << rule << '\n';
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            append_padded(out, c < row.size() ? row[c] : std::string{}, widths[c]);
            if (c + 1 < widths.size()) {
                out << " | ";
            }
        }
        out << '\n';
    }
    for (const auto& note : footnotes_) {
        out << note << '\n';
    }
    if (!out) {
        throw std::runtime_error("Table::to_string: render stream failure for table '" + title_ +
                                 "'");
    }
    return out.str();
}

std::string Table::to_markdown() const
{
    std::ostringstream out;
    if (!title_.empty()) {
        out << "### " << title_ << "\n\n";
    }
    if (!header_.empty()) {
        out << '|';
        for (const auto& cell : header_) {
            out << ' ' << cell << " |";
        }
        out << "\n|";
        for (std::size_t c = 0; c < header_.size(); ++c) {
            out << "---|";
        }
        out << '\n';
    }
    for (const auto& row : rows_) {
        out << '|';
        for (const auto& cell : row) {
            out << ' ' << cell << " |";
        }
        out << '\n';
    }
    for (const auto& note : footnotes_) {
        out << "\n_" << note << "_\n";
    }
    if (!out) {
        throw std::runtime_error("Table::to_markdown: render stream failure for table '" +
                                 title_ + "'");
    }
    return out.str();
}

void Table::write_file(const std::string& path, bool markdown) const
{
    DurableFile::write_file(path, markdown ? to_markdown() : to_string());
}

std::string format_double(double value, int decimals)
{
    if (!std::isfinite(value)) {
        return "n/a";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
    return buffer;
}

std::string format_mean_ci(double mean, double ci, int decimals)
{
    return format_double(mean, decimals) + " ±" + format_double(ci, decimals);
}

std::string format_degraded_mean_ci(double mean, double ci, std::size_t surviving,
                                    std::size_t missing, int decimals)
{
    if (missing == 0) {
        return format_mean_ci(mean, ci, decimals);
    }
    const std::string marker = " †" + std::to_string(missing);
    if (surviving == 0) {
        return "n/a" + marker;
    }
    return format_mean_ci(mean, ci, decimals) + marker;
}

} // namespace fptc::util
