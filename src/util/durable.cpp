#include "fptc/util/durable.hpp"

#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/telemetry.hpp"

#include "fptc/util/log.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/vfs.h>
#endif

namespace fptc::util {

namespace {

[[nodiscard]] std::string errno_text(int err)
{
    return std::string(std::strerror(err)) + " (errno " + std::to_string(err) + ")";
}

/// Resource-exhaustion errors pass with time; anything else is a
/// deterministic environment/programming problem.
[[nodiscard]] bool errno_is_transient(int err) noexcept
{
    return err == ENOSPC || err == EDQUOT || err == EAGAIN || err == EMFILE || err == ENFILE;
}


/// The syscall shim: every durable byte goes through here.  Handles the
/// injector's kill point (partial payload then _exit — a simulated power
/// loss), injected ENOSPC/short writes, EINTR, and real partial writes.
void shim_write_fully(int fd, std::string_view data, const std::string& path)
{
    while (!data.empty()) {
        if (fault_injector().inject_crash_at_write()) {
            // Tear the artifact for real: half the payload reaches the
            // file, then the process dies without unwinding.  _exit skips
            // atexit/destructors exactly like a power cut skips them.
            const auto half = data.size() / 2;
            if (half > 0) {
                [[maybe_unused]] const auto n = ::write(fd, data.data(), half);
            }
            ::_exit(kCrashExitCode);
        }
        const std::size_t want = fault_injector().clamp_write(data.size());
        if (fault_injector().inject_enospc(want)) {
            throw IoError("durable write to " + path + " failed: injected " + errno_text(ENOSPC),
                          /*transient=*/true);
        }
        const ssize_t n = ::write(fd, data.data(), want);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            const int err = errno;
            throw IoError("durable write to " + path + " failed: " + errno_text(err),
                          errno_is_transient(err));
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
}

void shim_fsync(int fd, const std::string& path)
{
    if (fault_injector().inject_fsync_failure()) {
        throw IoError("fsync of " + path + " failed: injected " + errno_text(EIO),
                      /*transient=*/true);
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        // A failed fsync means the kernel may have dropped dirty pages; the
        // caller's temp file (or appended line) cannot be trusted.  The
        // un-renamed state on disk is still clean, so a retry is plausible.
        throw IoError("fsync of " + path + " failed: " + errno_text(err),
                      errno_is_transient(err) || err == EIO);
    }
}

} // namespace

DurableFile::DurableFile(std::string path) : target_(std::move(path))
{
    // Unique temp name in the same directory: rename() must stay within one
    // filesystem to be atomic, and O_EXCL guards against collisions with a
    // concurrent writer or crash debris.
    static std::atomic<std::uint64_t> sequence{0};
    for (int attempt = 0; attempt < 16; ++attempt) {
        temp_ = target_ + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid())) + "." +
                std::to_string(sequence.fetch_add(1) + 1);
        fd_ = ::open(temp_.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
        if (fd_ >= 0) {
            return;
        }
        if (errno != EEXIST) {
            break;
        }
    }
    const int err = errno;
    throw IoError("DurableFile: cannot create temp file for " + target_ + ": " + errno_text(err),
                  errno_is_transient(err));
}

DurableFile::~DurableFile()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!committed_ && !temp_.empty()) {
        ::unlink(temp_.c_str());  // aborted transaction: leave no debris
    }
}

void DurableFile::write(std::string_view data)
{
    if (fd_ < 0) {
        throw IoError("DurableFile: write after commit to " + target_, /*transient=*/false);
    }
    shim_write_fully(fd_, data, temp_);
}

void DurableFile::commit()
{
    // The fsync + rename + parent fsync dominate a durable transaction; one
    // span here covers every DurableFile user (checkpoints, tables, traces).
    FPTC_TRACE_SPAN("durable_write");
    if (fd_ < 0) {
        throw IoError("DurableFile: double commit to " + target_, /*transient=*/false);
    }
    shim_fsync(fd_, temp_);
    if (::close(fd_) != 0) {
        const int err = errno;
        fd_ = -1;
        throw IoError("DurableFile: close of " + temp_ + " failed: " + errno_text(err),
                      errno_is_transient(err));
    }
    fd_ = -1;
    if (::rename(temp_.c_str(), target_.c_str()) != 0) {
        const int err = errno;
        throw IoError("DurableFile: rename to " + target_ + " failed: " + errno_text(err),
                      errno_is_transient(err));
    }
    committed_ = true;  // from here the temp file no longer exists
    fsync_parent_dir(target_);
}

void DurableFile::write_file(const std::string& path, std::string_view content)
{
    DurableFile file(path);
    file.write(content);
    file.commit();
}

void durable_append_line(const std::string& path, std::string_view line)
{
    FPTC_TRACE_SPAN("durable_write");
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
        const int err = errno;
        throw IoError("durable append: cannot open " + path + ": " + errno_text(err),
                      errno_is_transient(err));
    }
    try {
        std::string payload(line);
        payload += '\n';
        // One shim write for the whole line: concurrent appenders (already
        // serialized by the journal mutex) and the kill point both operate
        // on whole-line granularity.
        shim_write_fully(fd, payload, path);
        shim_fsync(fd, path);
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
}

void probe_appendable(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
        const int err = errno;
        throw IoError("cannot open " + path + " for writing: " + errno_text(err),
                      errno_is_transient(err));
    }
    ::close(fd);
}

std::string parent_dir_of(const std::string& path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos) {
        return ".";
    }
    if (slash == 0) {
        return "/";
    }
    return path.substr(0, slash);
}

std::string filesystem_name_of(const std::string& path)
{
#if defined(__linux__)
    struct statfs info{};
    if (::statfs(path.c_str(), &info) != 0 &&
        ::statfs(parent_dir_of(path).c_str(), &info) != 0) {
        return "unknown";
    }
    switch (static_cast<unsigned long>(info.f_type)) {
    case 0x6969: return "nfs";            // NFS_SUPER_MAGIC
    case 0xEF53: return "ext4";           // EXT2/3/4_SUPER_MAGIC
    case 0x58465342: return "xfs";
    case 0x9123683E: return "btrfs";
    case 0x01021994: return "tmpfs";
    case 0x794C7630: return "overlayfs";
    case 0x65735546: return "fuse";
    case 0xFF534D42: return "cifs";
    case 0x6165676C: return "pstorefs";
    default: {
        char magic[32];
        std::snprintf(magic, sizeof(magic), "unknown(0x%lx)",
                      static_cast<unsigned long>(info.f_type));
        return magic;
    }
    }
#else
    (void)path;
    return "unknown";
#endif
}

void probe_flock(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        const int err = errno;
        throw IoError("probe_flock: cannot open " + path + ": " + errno_text(err),
                      errno_is_transient(err));
    }
    int rc = 0;
    while ((rc = ::flock(fd, LOCK_EX | LOCK_NB)) != 0 && errno == EINTR) {
    }
    const int err = errno;
    if (rc == 0) {
        ::flock(fd, LOCK_UN);
    }
    ::close(fd);
    if (rc == 0 || err == EWOULDBLOCK || err == EAGAIN) {
        return;  // lock taken, or legitimately held by a sibling: flock works
    }
    if (err == ENOLCK || err == ENOSYS || err == EOPNOTSUPP) {
        throw EnvError("flock is not functional on " + path + " (filesystem: " +
                       filesystem_name_of(path) + "): " + errno_text(err) +
                       " — the shard lease protocol needs real advisory locks; NFS "
                       "mounts without lock support cannot host FPTC_JOURNAL, point it "
                       "at a local filesystem");
    }
    throw IoError("probe_flock: flock of " + path + " failed: " + errno_text(err),
                  /*transient=*/false);
}

FileLock::FileLock(const std::string& path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        const int err = errno;
        throw IoError("FileLock: cannot open " + path + ": " + errno_text(err),
                      errno_is_transient(err));
    }
    while (::flock(fd_, LOCK_EX) != 0) {
        if (errno == EINTR) {
            continue;
        }
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw IoError("FileLock: flock of " + path + " failed: " + errno_text(err),
                      /*transient=*/false);
    }
}

FileLock::~FileLock()
{
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }
}

std::size_t scavenge_orphan_temps(const std::string& dir)
{
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) {
        return 0;
    }
    std::size_t removed = 0;
    while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        const auto marker = name.find(".tmp.");
        if (marker == std::string::npos) {
            continue;
        }
        // DurableFile temps are "<target>.tmp.<pid>.<seq>"; anything that
        // does not parse that way is not ours to touch.
        const std::string tail = name.substr(marker + 5);
        const auto dot = tail.find('.');
        if (dot == std::string::npos || dot == 0 || dot + 1 >= tail.size()) {
            continue;
        }
        char* end = nullptr;
        const long pid = std::strtol(tail.c_str(), &end, 10);
        if (pid <= 0 || end != tail.c_str() + dot ||
            tail.find_first_not_of("0123456789", dot + 1) != std::string::npos) {
            continue;
        }
        if (pid == static_cast<long>(::getpid())) {
            continue;  // our own in-flight transaction
        }
        if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) {
            continue;  // writer still alive (or unknowable): not debris
        }
        const std::string path = dir + "/" + name;
        if (::unlink(path.c_str()) == 0) {
            ++removed;
        }
    }
    ::closedir(handle);
    if (removed > 0) {
        log_info("durable: scavenged " + std::to_string(removed) +
                 " orphan temp file(s) in " + dir);
    }
    return removed;
}

void fsync_parent_dir(const std::string& path)
{
    const std::string dir = parent_dir_of(path);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
        return;  // best-effort: some filesystems refuse O_RDONLY on dirs
    }
    // Directory fsync failures are not actionable (the rename itself
    // succeeded); deliberately not routed through the injector either, so
    // the kill-point indexes count only data writes.
    ::fsync(fd);
    ::close(fd);
}

} // namespace fptc::util
