#include "fptc/util/membudget.hpp"

#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/telemetry.hpp"

#include <sstream>
#include <string>

namespace fptc::util {

namespace {

// Refusals are mirrored into the metrics registry at the moment they happen
// (both tallies are monotonic and never reset, so they stay equal).  The
// refusal path is cold — a registry lookup is fine here, never in reserve()'s
// success path.
void count_rejection()
{
    metrics().counter("fptc_membudget_rejections_total").add(1);
}

} // namespace

void MemBudget::reserve(std::size_t bytes, const char* what)
{
    if (bytes == 0) {
        return;
    }
    if (fault_injector().inject_alloc_fail(bytes)) {
        rejections_.fetch_add(1, std::memory_order_relaxed);
        count_rejection();
        const std::size_t budget = budget_.load(std::memory_order_relaxed);
        const std::size_t used = in_use_.load(std::memory_order_acquire);
        const std::size_t available = (budget != 0 && budget > used) ? budget - used : 0;
        throw BudgetExceeded(std::string("fault-injected: ") + what, bytes, available);
    }
    std::size_t used = in_use_.load(std::memory_order_acquire);
    for (;;) {
        const std::size_t budget = budget_.load(std::memory_order_relaxed);
        if (budget != 0 && (used >= budget || bytes > budget - used)) {
            rejections_.fetch_add(1, std::memory_order_relaxed);
            count_rejection();
            throw BudgetExceeded(what, bytes, used < budget ? budget - used : 0);
        }
        if (in_use_.compare_exchange_weak(used, used + bytes, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            break;
        }
    }
    reserved_total_.fetch_add(bytes, std::memory_order_relaxed);
    const std::size_t now = used + bytes;
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(peak, now, std::memory_order_release,
                                                      std::memory_order_relaxed)) {
    }
}

void MemBudget::release(std::size_t bytes) noexcept
{
    if (bytes == 0) {
        return;
    }
    std::size_t used = in_use_.load(std::memory_order_acquire);
    for (;;) {
        const std::size_t next = bytes < used ? used - bytes : 0;
        if (in_use_.compare_exchange_weak(used, next, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            break;
        }
    }
}

std::string MemBudget::summary() const
{
    std::ostringstream out;
    out << "in_use=" << in_use() << " peak=" << peak_bytes() << " budget=" << budget_bytes()
        << " rejections=" << rejections();
    return out.str();
}

MemBudget& mem_budget()
{
    static MemBudget instance;
    static const bool configured = [] {
        if (const auto mb = env_int("FPTC_MEM_BUDGET_MB"); mb && *mb > 0) {
            instance.set_budget_bytes(static_cast<std::size_t>(*mb) * 1024 * 1024);
        }
        return true;
    }();
    (void)configured;
    return instance;
}

} // namespace fptc::util
