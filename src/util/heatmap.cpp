#include "fptc/util/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace fptc::util {

namespace {

// Shade ramp from empty to dense.
constexpr const char* kShades = " .:-=+*#%@";
constexpr std::size_t kShadeCount = 10;

[[nodiscard]] char shade_for(double normalized) noexcept
{
    const auto idx = static_cast<std::size_t>(normalized * (kShadeCount - 1) + 0.5);
    return kShades[std::min(idx, kShadeCount - 1)];
}

} // namespace

std::string render_heatmap(std::span<const float> values, std::size_t rows, std::size_t cols,
                           const HeatmapOptions& options)
{
    if (rows == 0 || cols == 0 || values.size() < rows * cols) {
        return "(empty heatmap)\n";
    }
    // Downsample by block-summing so large flowpics (e.g. 1500x1500) remain
    // printable while conserving total mass per block.
    const std::size_t out_rows = std::min(rows, options.max_side);
    const std::size_t out_cols = std::min(cols, options.max_side);
    std::vector<double> grid(out_rows * out_cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t rr = r * out_rows / rows;
        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t cc = c * out_cols / cols;
            grid[rr * out_cols + cc] += static_cast<double>(values[r * cols + c]);
        }
    }

    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (auto& v : grid) {
        if (options.log_scale) {
            v = std::log1p(v);
        }
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double range = hi - lo;

    std::ostringstream out;
    out << '+' << std::string(out_cols, '-') << "+\n";
    for (std::size_t r = 0; r < out_rows; ++r) {
        out << '|';
        for (std::size_t c = 0; c < out_cols; ++c) {
            const double v = grid[r * out_cols + c];
            const double normalized = range > 0.0 ? (v - lo) / range : 0.0;
            out << shade_for(normalized);
        }
        out << "|\n";
    }
    out << '+' << std::string(out_cols, '-') << "+\n";
    if (options.show_scale) {
        out << "scale: ' '=min";
        if (options.log_scale) {
            out << " (log)";
        }
        out << ", '@'=max  [" << lo << ", " << hi << "]\n";
    }
    if (!out) {
        throw std::runtime_error("render_heatmap: render stream failure");
    }
    return out.str();
}

std::string render_confusion(const std::vector<std::vector<double>>& matrix,
                             const std::vector<std::string>& labels)
{
    std::ostringstream out;
    std::size_t label_width = 4;
    for (const auto& label : labels) {
        label_width = std::max(label_width, label.size());
    }
    out << std::string(label_width + 1, ' ');
    for (std::size_t c = 0; c < labels.size(); ++c) {
        char buffer[16];
        std::snprintf(buffer, sizeof buffer, "%6zu", c);
        out << buffer;
    }
    out << "   (columns: predicted class index)\n";
    for (std::size_t r = 0; r < matrix.size(); ++r) {
        const std::string& label = r < labels.size() ? labels[r] : std::string{};
        out << label << std::string(label_width - label.size() + 1, ' ');
        for (const double v : matrix[r]) {
            char buffer[16];
            std::snprintf(buffer, sizeof buffer, "%6.2f", v);
            out << buffer;
        }
        out << '\n';
    }
    if (!out) {
        throw std::runtime_error("render_confusion: render stream failure");
    }
    return out.str();
}

std::string render_curve(std::span<const double> xs, std::span<const double> ys,
                         std::size_t width, std::size_t height)
{
    if (xs.empty() || ys.size() != xs.size() || width == 0 || height == 0) {
        return "(empty curve)\n";
    }
    const double x_lo = xs.front();
    const double x_hi = xs.back();
    double y_hi = 0.0;
    for (const double y : ys) {
        y_hi = std::max(y_hi, y);
    }
    if (y_hi <= 0.0) {
        y_hi = 1.0;
    }
    std::vector<std::string> canvas(height, std::string(width, ' '));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double fx = x_hi > x_lo ? (xs[i] - x_lo) / (x_hi - x_lo) : 0.0;
        const auto col = std::min(static_cast<std::size_t>(fx * (width - 1) + 0.5), width - 1);
        const double fy = std::clamp(ys[i] / y_hi, 0.0, 1.0);
        const auto bar = static_cast<std::size_t>(fy * (height - 1) + 0.5);
        for (std::size_t h = 0; h <= bar; ++h) {
            canvas[height - 1 - h][col] = h == bar ? '*' : ':';
        }
    }
    std::ostringstream out;
    for (const auto& line : canvas) {
        out << '|' << line << '\n';
    }
    out << '+' << std::string(width, '-') << "\n x: [" << x_lo << ", " << x_hi << "], peak y: " << y_hi
        << '\n';
    if (!out) {
        throw std::runtime_error("render_curve: render stream failure");
    }
    return out.str();
}

} // namespace fptc::util
