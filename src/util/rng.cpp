#include "fptc/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace fptc::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) noexcept
{
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

Rng::result_type Rng::operator()() noexcept
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

Rng Rng::fork() noexcept
{
    return Rng{(*this)()};
}

double Rng::uniform() noexcept
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept
{
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept
{
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) { // full 64-bit range requested
        return static_cast<std::int64_t>((*this)());
    }
    // Lemire's nearly-divisionless bounded sampling with rejection.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto l = static_cast<std::uint64_t>(m);
    if (l < range) {
        const std::uint64_t threshold = (0 - range) % range;
        while (l < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * range;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() noexcept
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) {
        u1 = uniform();
    }
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept
{
    return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept
{
    double u = uniform();
    while (u <= 0.0) {
        u = uniform();
    }
    return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) noexcept
{
    return std::exp(normal(mu, sigma));
}

int Rng::poisson(double lambda) noexcept
{
    if (lambda <= 0.0) {
        return 0;
    }
    if (lambda > 64.0) {
        // Normal approximation with continuity correction; adequate for the
        // synthetic traffic models where lambda is a burst size.
        const double x = normal(lambda, std::sqrt(lambda));
        return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
    }
    const double limit = std::exp(-lambda);
    double product = uniform();
    int count = 0;
    while (product > limit) {
        product *= uniform();
        ++count;
    }
    return count;
}

bool Rng::bernoulli(double p) noexcept
{
    return uniform() < p;
}

int Rng::geometric(double p) noexcept
{
    if (p >= 1.0) {
        return 0;
    }
    double u = uniform();
    while (u <= 0.0) {
        u = uniform();
    }
    return static_cast<int>(std::floor(std::log(u) / std::log(1.0 - p)));
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept
{
    double total = 0.0;
    for (const double w : weights) {
        total += w > 0.0 ? w : 0.0;
    }
    if (total <= 0.0) {
        return 0;
    }
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (target < w) {
            return i;
        }
        target -= w;
    }
    return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) noexcept
{
    std::vector<std::size_t> indices(n);
    for (std::size_t i = 0; i < n; ++i) {
        indices[i] = i;
    }
    // Partial Fisher-Yates: only the first k positions need to be finalized.
    const std::size_t limit = k < n ? k : n;
    for (std::size_t i = 0; i < limit; ++i) {
        const auto j = static_cast<std::size_t>(
            uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
        std::swap(indices[i], indices[j]);
    }
    indices.resize(limit);
    return indices;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept
{
    std::uint64_t s = seed;
    std::uint64_t h = splitmix64(s);
    s ^= a * 0x9e3779b97f4a7c15ULL;
    h ^= splitmix64(s);
    s ^= b * 0xc2b2ae3d27d4eb4fULL;
    h ^= splitmix64(s);
    s ^= c * 0x165667b19e3779f9ULL;
    h ^= splitmix64(s);
    return h;
}

} // namespace fptc::util
