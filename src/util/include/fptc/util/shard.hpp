// Cross-process work claiming for sharded campaign execution.
//
// A sharded run (FPTC_SHARDS=N) executes one campaign with N worker
// processes that share a journal *family* (util/journal.hpp): each worker
// appends finished units to its private `<base>.shard<i>` journal, and all
// claim coordination goes through a single shared lease file.  This module
// provides the two cross-process primitives the executor's worker mode is
// built on:
//
//   * LeaseStore — a durable claim registry over `<base>.leases`.  A lease
//     is a JSONL record {key, shard, op, exp_ms}; every transaction (claim,
//     heartbeat, release) appends under the family's `<base>.lock` flock,
//     so two workers can never both think they own a unit.  Leases expire:
//     a worker that is SIGKILLed mid-unit stops heartbeating, its lease's
//     CLOCK_REALTIME expiry passes, and a sibling *steals* the unit by
//     claiming over the dead lease — crash-of-a-shard costs one lease TTL,
//     not the campaign.
//
//   * ShardJournalSet — a rate-limited read-only view of the *other*
//     family members' journals (base + sibling shards), so a worker can
//     adopt units a sibling already finished instead of re-running them.
//
//   * spawn_shard_worker — fork/exec of the coordinator's own binary
//     (/proc/self/exe + /proc/self/cmdline) with a worker environment and
//     stdout redirected to a per-shard capture file.
//
// Clocks: lease expiries use CLOCK_REALTIME milliseconds because they must
// compare across processes (CLOCK_MONOTONIC has no cross-boot or
// cross-process epoch guarantee).  A realtime clock step can thus expire or
// extend leases early/late; the executor tolerates both — stealing a lease
// whose owner is alive is safe because the journal commit is idempotent
// (last record wins, both records carry identical deterministic fields).
#pragma once

#include "fptc/util/journal.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fptc::util {

/// CLOCK_REALTIME in milliseconds — the shared lease clock.
[[nodiscard]] std::int64_t now_realtime_ms();

/// Decoded state of one lease after last-record-wins folding.
struct LeaseInfo {
    int shard = -1;             ///< current owner
    std::int64_t exp_ms = 0;    ///< CLOCK_REALTIME expiry of the claim/beat
};

/// Durable cross-process claim registry over `<base>.leases`.
///
/// Thread safety: NOT internally synchronized — the executor calls it from
/// its scheduling loop and heartbeat thread under its own mutex.  Cross-
/// *process* safety is what this class provides (every transaction runs
/// under the family flock).
class LeaseStore {
public:
    /// `base` is the journal family base (FPTC_JOURNAL); `ttl_s` is how long
    /// a claim lives without a heartbeat.
    LeaseStore(std::string base, int shard_id, double ttl_s);

    /// Claim `key` for this shard: returns false when an unexpired foreign
    /// lease holds it.  Claiming over an *expired* foreign lease succeeds
    /// and counts as a steal.
    [[nodiscard]] bool try_claim(const std::string& key);

    /// Extend this shard's leases on `keys` by one TTL from now.  Called by
    /// the executor's heartbeat thread every TTL/3 while units run.
    void heartbeat(const std::vector<std::string>& keys);

    /// Release the lease on a finished (journaled) unit.
    void release(const std::string& key);

    /// Current live leases (expired and released entries folded away).
    /// Snapshot for tests and diagnostics; immediately stale by design.
    [[nodiscard]] std::map<std::string, LeaseInfo> snapshot();

    /// Leases this store claimed over an expired foreign owner.
    [[nodiscard]] std::size_t stolen() const noexcept { return stolen_; }

    [[nodiscard]] double ttl_s() const noexcept { return ttl_s_; }

private:
    /// Fold the lease file into key -> latest record (release = erased).
    [[nodiscard]] std::map<std::string, LeaseInfo> load_locked();
    void append_locked(const std::string& key, const char* op, std::int64_t exp_ms);

    std::string lease_path_;
    std::string lock_path_;
    int shard_id_;
    double ttl_s_;
    std::size_t stolen_ = 0;
    std::size_t appends_since_compact_ = 0;
};

/// Rate-limited read-only union of the journal family's *other* members
/// (base journal + sibling shard journals), so a worker adopts units a
/// sibling finished instead of re-claiming them.
class ShardJournalSet {
public:
    /// `own_shard` >= 0 excludes that shard's own journal (its records are
    /// already in the worker's RunJournal).
    ShardJournalSet(std::string base, int own_shard);

    /// Re-read the sibling journals if at least `min_interval_ms` passed
    /// since the last reload (0 forces one).  Returns true when a reload
    /// actually happened.
    bool maybe_reload(std::int64_t min_interval_ms);

    /// Fields of `key` if some other family member committed it.
    [[nodiscard]] std::optional<std::map<std::string, std::string>> find(
        const std::string& key) const;

    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

private:
    std::string base_;
    std::string own_path_;
    std::int64_t last_reload_ms_ = 0;
    std::map<std::string, std::map<std::string, std::string>> records_;
};

/// One environment assignment for a spawned worker.
struct EnvVar {
    std::string name;
    std::string value;  ///< empty + unset=true removes the variable
    bool unset = false;
};

/// Fork/exec a shard worker: re-runs this process's own binary and argv
/// (/proc/self/exe, /proc/self/cmdline) with `env` applied and stdout
/// redirected (append) to `stdout_path`; an empty `stdout_path` inherits
/// the parent's stdout (used by the serve supervisor, whose worker shares
/// the terminal).  Returns the child pid; throws IoError when the fork or
/// the pre-exec setup fails.  Must be called before the coordinator starts
/// its worker pool (fork in a single-threaded process).
[[nodiscard]] int spawn_shard_worker(const std::vector<EnvVar>& env,
                                     const std::string& stdout_path);

} // namespace fptc::util
