// Cooperative cancellation for supervised campaign units.
//
// The campaign executor runs every (config, split, seed) unit under a
// supervisor: a per-unit watchdog deadline plus campaign-wide cancellation.
// Training is plain CPU compute with no blocking syscalls, so enforcement is
// cooperative — the executor arms a CancelToken and the training loops poll
// it once per batch (see TrainHooks in fptc/core/trainer.hpp).  A tripped
// token makes poll() throw CancelledError, which unwinds the unit before any
// result is recorded: a cancelled unit leaves no partial journal entry.
//
// Tokens chain: a per-unit token with its own deadline links to the
// campaign-wide token, so cancel_all() reaches into running units.
//
// The token also hosts the `stall` fault (FPTC_FAULT_STALL_UNITS): when the
// executor arms a stall, the next poll() sleeps — simulating a hung unit —
// until the watchdog deadline trips it, or a hard cap elapses so a stall
// without a watchdog cannot hang the process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

namespace fptc::util {

/// Why a token tripped.  `none` means "still running".
enum class CancelKind : int {
    none = 0,
    cancelled = 1,  ///< explicit cancellation (cancel_all, shutdown)
    timeout = 2,    ///< the per-unit watchdog deadline expired
};

[[nodiscard]] constexpr const char* cancel_kind_name(CancelKind kind) noexcept
{
    switch (kind) {
    case CancelKind::cancelled: return "cancelled";
    case CancelKind::timeout: return "timeout";
    case CancelKind::none: break;
    }
    return "none";
}

/// Thrown by CancelToken::poll() once the token trips.
class CancelledError : public std::runtime_error {
public:
    CancelledError(CancelKind kind, const std::string& message)
        : std::runtime_error(message), kind_(kind)
    {
    }

    [[nodiscard]] CancelKind kind() const noexcept { return kind_; }

private:
    CancelKind kind_;
};

/// Lock-free cancellation flag with an optional watchdog deadline and an
/// optional parent token.  All methods are safe to call concurrently.
class CancelToken {
public:
    CancelToken() = default;

    /// Chain to a parent (campaign-wide) token; the parent must outlive this
    /// token.  A tripped parent trips the child at the next state() check.
    void set_parent(const CancelToken* parent) noexcept { parent_ = parent; }

    /// Trip the token.  The first kind to land wins; later calls are no-ops.
    void cancel(CancelKind kind = CancelKind::cancelled) const noexcept
    {
        int expected = 0;
        state_.compare_exchange_strong(expected, static_cast<int>(kind),
                                       std::memory_order_acq_rel);
    }

    /// Arm the watchdog: trip with CancelKind::timeout once `seconds` have
    /// elapsed from now.  seconds <= 0 disables the deadline.
    void set_timeout(double seconds) noexcept
    {
        if (seconds <= 0.0) {
            deadline_ns_.store(0, std::memory_order_release);
            return;
        }
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::nanoseconds(static_cast<std::int64_t>(seconds * 1e9));
        deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_release);
    }

    /// Arm an injected stall (the `stall` fault class): the next poll()
    /// sleeps until the token trips or `cap` elapses.
    void arm_stall(std::chrono::milliseconds cap) const noexcept
    {
        stall_cap_ms_.store(static_cast<std::int64_t>(cap.count()), std::memory_order_release);
    }

    /// Current state; promotes an expired deadline or tripped parent to a
    /// latched cancellation.
    [[nodiscard]] CancelKind state() const noexcept
    {
        const int latched = state_.load(std::memory_order_acquire);
        if (latched != 0) {
            return static_cast<CancelKind>(latched);
        }
        if (parent_ != nullptr && parent_->state() != CancelKind::none) {
            cancel(CancelKind::cancelled);
            return static_cast<CancelKind>(state_.load(std::memory_order_acquire));
        }
        const std::int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
        if (deadline != 0 &&
            std::chrono::steady_clock::now().time_since_epoch().count() >= deadline) {
            cancel(CancelKind::timeout);
            return static_cast<CancelKind>(state_.load(std::memory_order_acquire));
        }
        return CancelKind::none;
    }

    [[nodiscard]] bool cancelled() const noexcept { return state() != CancelKind::none; }

    /// Cancellation point: serves a pending injected stall, then throws
    /// CancelledError when the token has tripped.  Cheap when idle (one
    /// relaxed atomic load plus a clock read when a deadline is armed).
    void poll() const
    {
        const std::int64_t stall_ms = stall_cap_ms_.exchange(0, std::memory_order_acq_rel);
        if (stall_ms > 0) {
            serve_stall(std::chrono::milliseconds(stall_ms));
        }
        const CancelKind kind = state();
        if (kind == CancelKind::none) {
            return;
        }
        throw CancelledError(kind, kind == CancelKind::timeout
                                       ? "unit watchdog deadline exceeded"
                                       : "unit cancelled");
    }

private:
    void serve_stall(std::chrono::milliseconds cap) const
    {
        const auto give_up = std::chrono::steady_clock::now() + cap;
        while (state() == CancelKind::none && std::chrono::steady_clock::now() < give_up) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    mutable std::atomic<int> state_{0};
    std::atomic<std::int64_t> deadline_ns_{0};
    mutable std::atomic<std::int64_t> stall_cap_ms_{0};
    const CancelToken* parent_ = nullptr;
};

} // namespace fptc::util
