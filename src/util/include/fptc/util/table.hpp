// Plain-text / markdown table rendering for benchmark reports.
//
// Every bench binary in this repository prints the rows of the paper table it
// regenerates; this helper keeps column alignment and formatting consistent
// across all of them (including the "mean ± CI" cells of Tables 3-8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fptc::util {

/// Column-aligned text table with an optional title and footnotes.
class Table {
public:
    explicit Table(std::string title = {});

    /// Set the header row.  Must be called before adding rows.
    void set_header(std::vector<std::string> header);

    /// Append a data row; it may have fewer cells than the header.
    void add_row(std::vector<std::string> row);

    /// Append a footnote line rendered below the table.
    void add_footnote(std::string note);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Render with box-drawing alignment suitable for terminals and logs.
    /// Throws std::runtime_error if the render stream fails.
    [[nodiscard]] std::string to_string() const;

    /// Render as a GitHub-flavored markdown table.  Throws
    /// std::runtime_error if the render stream fails.
    [[nodiscard]] std::string to_markdown() const;

    /// Persist the rendered table (text, or markdown when `markdown`) to
    /// `path` through the durable I/O layer (temp + fsync + rename); throws
    /// util::IoError with errno context on failure.
    void write_file(const std::string& path, bool markdown = false) const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> footnotes_;
};

/// Format a floating point value with the given number of decimals.
[[nodiscard]] std::string format_double(double value, int decimals = 2);

/// Format "mean ±ci" the way the paper reports accuracy cells, e.g. "96.80 ±0.37".
[[nodiscard]] std::string format_mean_ci(double mean, double ci, int decimals = 2);

/// Format a cell whose aggregation is missing degraded campaign units:
/// "96.80 ±0.37" when complete, "96.80 ±0.37 †2" when 2 of its units
/// degraded, and "n/a †3" when no unit survived.  Pair with a table
/// footnote explaining the † marker.
[[nodiscard]] std::string format_degraded_mean_ci(double mean, double ci, std::size_t surviving,
                                                  std::size_t missing, int decimals = 2);

} // namespace fptc::util
