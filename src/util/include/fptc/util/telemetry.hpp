// Campaign telemetry: structured tracing, metrics registry, phase profiler.
//
// The paper's contribution is a careful measurement protocol (95% CIs,
// Friedman/Nemenyi, Tukey HSD over 13 campaigns); this module gives the
// execution substrate the same discipline about *itself*.  Three coordinated
// parts share one enablement switch:
//
//   * Tracing   — RAII spans (`FPTC_TRACE_SPAN("unit", {{"key", k}})`)
//                 recorded into per-thread lock-free ring buffers and
//                 exported as Chrome trace_event JSON (FPTC_TRACE=trace.json,
//                 loadable in chrome://tracing / Perfetto).  Span taxonomy:
//                 executor lifecycle (unit, attempt, backoff, admission_wait,
//                 journal_replay, degrade), training phases (epoch, datagen,
//                 flowpic, augment, forward, loss, backward, optimizer),
//                 gbt_round, and persistence (journal_commit, durable_write).
//   * Metrics   — a typed registry (counter / gauge / histogram with fixed
//                 log2 bucketing) of process-wide instruments named
//                 `fptc_<area>_<name>`.  Exported as a Prometheus-style text
//                 snapshot and a machine-readable JSON dump
//                 (FPTC_METRICS=metrics.json writes both, the text snapshot
//                 at <path>.prom).
//   * Profiler  — every finished span feeds a per-phase duration histogram
//                 (`fptc_phase_<name>_duration_ns`) plus an accounted-bytes
//                 counter (delta of MemBudget::reserved_total across the
//                 span).  profiler_report() renders the per-phase
//                 mean/p50/p95/alloc breakdown; telemetry_flush() prints it
//                 to stderr at FPTC_LOG>=2 and persists it durably next to
//                 the bench artifacts (FPTC_ARTIFACTS_DIR).
//
// Cost model.  Compile-time: defining FPTC_NO_TELEMETRY expands every
// FPTC_TRACE_SPAN to nothing.  Runtime: a disabled span is one inlined
// relaxed atomic load and a predictable branch (the cached span gate); no
// call, no allocation, no lock.  An enabled span is two steady_clock reads, two atomic loads of
// the accountant's running total, one lock-free ring push per trace event,
// and one small mutex-guarded map lookup at span end (phase stats).  Spans
// never touch stdout: campaign tables stay bit-identical for any FPTC_JOBS
// with telemetry on or off — trace/metrics ride on stderr and side files.
//
// Thread safety: rings are single-producer (the owning thread); the
// exporter snapshots them after the executor's workers have joined.
// Instruments are atomics; the registry map is mutex-guarded on lookup
// only.  Ring capacity is bounded (FPTC_TRACE_EVENTS per thread, default
// 32768): on overflow the *oldest* events are overwritten, keeping the most
// recent window — histograms aggregate everything regardless.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace fptc::util {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Monotonic event count.  Lock-free.
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    /// Test-isolation helper; production code never resets a counter.
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (peak bytes, budget bytes, snapshot tallies).
class Gauge {
public:
    void set(std::int64_t value) noexcept { value_.store(value, std::memory_order_relaxed); }

    /// Raise-only update, for high-water marks.
    void set_max(std::int64_t value) noexcept
    {
        std::int64_t current = value_.load(std::memory_order_relaxed);
        while (value > current &&
               !value_.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
        }
    }

    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed log2-bucketed histogram of non-negative integer observations
/// (durations in ns, byte counts).  Bucket b collects values whose bit
/// width is b, i.e. [2^(b-1), 2^b); bucket 0 collects exactly 0.  Quantiles
/// are estimated at the geometric midpoint of the selected bucket, which is
/// the right error model for a log2 grid (at most ~41% relative error,
/// typically far less — plenty for a wall-clock breakdown).
class Histogram {
public:
    static constexpr std::size_t kBuckets = 65;  ///< bit widths 0..64

    void observe(std::uint64_t value) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const noexcept
    {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bucket(std::size_t index) const;

    /// Mean of all observations (0 when empty).
    [[nodiscard]] double mean() const noexcept;

    /// Estimated q-quantile (q in [0,1]); 0 when empty.
    [[nodiscard]] double quantile(double q) const noexcept;

    /// Inclusive upper bound of bucket `index` (2^index - 1; bucket 0 -> 0).
    [[nodiscard]] static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

    void reset() noexcept;

private:
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide registry of named instruments.  Naming convention:
/// `fptc_<area>_<name>` with Prometheus-style suffixes (`_total` for
/// counters, `_bytes` / `_ns` units).  Instruments are created on first
/// lookup and never destroyed, so references stay valid for the process
/// lifetime; lookups take a mutex, the instruments themselves are lock-free.
class MetricsRegistry {
public:
    [[nodiscard]] Counter& counter(const std::string& name);
    [[nodiscard]] Gauge& gauge(const std::string& name);
    [[nodiscard]] Histogram& histogram(const std::string& name);

    /// Prometheus text exposition of every instrument (sorted by name).
    [[nodiscard]] std::string prometheus_text() const;

    /// Machine-readable JSON snapshot: {"counters":{..},"gauges":{..},
    /// "histograms":{name:{count,sum,mean,p50,p95,buckets:[{le,count}..]}}}.
    [[nodiscard]] std::string json_text() const;

    /// Sorted histogram names with the given prefix (profiler enumeration).
    [[nodiscard]] std::vector<std::string> histogram_names(const std::string& prefix) const;

    /// Zero every instrument's value (objects survive, so cached references
    /// remain valid).  Test isolation only.
    void reset_values_for_tests();

private:
    struct Impl;
    [[nodiscard]] Impl& impl() const;
};

/// The process-wide registry.
[[nodiscard]] MetricsRegistry& metrics();

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One ring-buffer slot.  `name` must be a string literal (never freed);
/// dynamic context travels in `args` — a pre-rendered JSON object body
/// ("\"key\":\"value\"", possibly empty), bounded so the hot path never
/// allocates.
struct TraceEvent {
    const char* name = nullptr;
    char phase = 'B';  ///< 'B' begin / 'E' end
    std::uint32_t tid = 0;
    std::uint64_t ts_ns = 0;  ///< steady-clock ns since process trace epoch
    char args[80] = {};       ///< JSON object body, '\0'-terminated
};

/// Resolved telemetry configuration (one per process).
struct TelemetryConfig {
    std::string trace_path;      ///< FPTC_TRACE ("" = tracing off)
    std::string metrics_path;    ///< FPTC_METRICS ("" = metrics dump off)
    std::size_t ring_capacity = 32768;  ///< FPTC_TRACE_EVENTS, per thread
    bool profile = false;        ///< FPTC_LOG >= 2: stderr profiler report
};

/// Resolve the configuration from the environment exactly once and arm the
/// flush-at-exit hook.  Strictly validated: an empty FPTC_TRACE/FPTC_METRICS
/// value, or one whose target cannot be opened for writing, throws EnvError
/// naming the knob — a campaign must refuse a bad sink up front, not die
/// hours in at the first flush.  The campaign executor calls this from its
/// constructor so the error surfaces before any unit runs.
const TelemetryConfig& telemetry_init();

/// Cached fast-path flag: true when any consumer (trace file, metrics dump,
/// FPTC_LOG>=2 profiler) is armed.  Never throws: if lazy initialization
/// hits a bad knob outside telemetry_init(), telemetry is disabled and the
/// error is logged once.
[[nodiscard]] bool telemetry_active() noexcept;

/// True when span events are recorded to the trace ring (FPTC_TRACE set).
[[nodiscard]] bool trace_enabled() noexcept;

/// Record a begin/end event on the calling thread's ring.  `name` must be a
/// string literal; `args_body` is a JSON object body copied into the slot.
void trace_begin(const char* name, const char* args_body = "");
void trace_end(const char* name);

/// Chronological snapshot of every thread's ring (post-join export; see the
/// thread-safety note above).
[[nodiscard]] std::vector<TraceEvent> trace_snapshot();

/// Events overwritten by ring wrap-around, across all threads.
[[nodiscard]] std::uint64_t trace_dropped();

/// Render the snapshot as Chrome trace_event JSON.  Per thread, orphan 'E'
/// events (their 'B' was overwritten by wrap-around) are dropped and spans
/// still open at export get a synthetic 'E', so the output always holds
/// balanced B/E pairs with monotone timestamps per tid.
[[nodiscard]] std::string chrome_trace_json();

/// Human per-phase breakdown (count, mean/p50/p95 wall, accounted alloc)
/// over every `fptc_phase_*_duration_ns` histogram; "" when nothing was
/// observed.
[[nodiscard]] std::string profiler_report();

/// Export everything that is armed: the Chrome trace (FPTC_TRACE), the
/// metrics JSON + Prometheus text (FPTC_METRICS, text at <path>.prom), and
/// the profiler report (stderr at FPTC_LOG>=2; durably persisted to
/// FPTC_ARTIFACTS_DIR/BENCH_profile.txt when that is set).  Snapshot
/// semantics — safe to call repeatedly; the final at-exit flush wins.
void telemetry_flush();

/// Test hooks: install a configuration without consulting the environment /
/// rewind so the next telemetry_init() re-reads it; empty ring heads.
void telemetry_configure_for_tests(const TelemetryConfig& config);
void telemetry_reset_for_tests();

/// Mirror the MemBudget accountant into the registry gauges
/// (fptc_membudget_{in_use,peak,budget}_bytes) — called by flush and by the
/// executor before it journals the __membudget__ record.  The rejections
/// counter (fptc_membudget_rejections_total) is incremented by the
/// accountant itself at refusal time.
void publish_membudget_metrics();

/// Snapshot the fault injector's per-class tallies into
/// fptc_fault_<class> gauges.  Called by flush.
void publish_fault_metrics();

namespace detail {
/// Span fast-path gate: 0 = telemetry not yet initialized, 1 = initialized
/// and inactive, 2 = initialized and active.  Written only under the
/// telemetry state mutex; the inline span constructor reads it relaxed so
/// the common disabled case costs one load and a predictable branch.
extern std::atomic<int> span_gate;
} // namespace detail

/// RAII span: records B/E trace events and feeds the per-phase histograms.
/// Inert (one inlined relaxed load + branch) when telemetry is inactive.
/// `name` must be a string literal.  Args values are copied at
/// construction, so short-lived strings are safe.
class TraceSpan {
public:
    explicit TraceSpan(const char* name)
    {
        if (detail::span_gate.load(std::memory_order_relaxed) != 1) {
            open(name);
        }
    }

    TraceSpan(const char* name,
              std::initializer_list<std::pair<const char*, const char*>> args)
    {
        if (detail::span_gate.load(std::memory_order_relaxed) != 1) {
            open_with_args(name, args);
        }
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    ~TraceSpan()
    {
        if (active_) {
            close();
        }
    }

private:
    void open(const char* name);
    void open_with_args(const char* name,
                        std::initializer_list<std::pair<const char*, const char*>> args);
    void close();
    void begin(const char* args_body);

    const char* name_ = nullptr;
    std::uint64_t start_ns_ = 0;
    std::uint64_t alloc_start_ = 0;
    bool active_ = false;
};

} // namespace fptc::util

// Span convenience macro.  FPTC_TRACE_SPAN("forward") opens a span for the
// rest of the enclosing scope; the two-argument-list form attaches context:
// FPTC_TRACE_SPAN("unit", {{"campaign", name.c_str()}, {"key", key.c_str()}}).
// Define FPTC_NO_TELEMETRY to compile every span out entirely.
#define FPTC_TELEMETRY_CONCAT_INNER(a, b) a##b
#define FPTC_TELEMETRY_CONCAT(a, b) FPTC_TELEMETRY_CONCAT_INNER(a, b)
#ifndef FPTC_NO_TELEMETRY
#define FPTC_TRACE_SPAN(...)                                                              \
    const ::fptc::util::TraceSpan FPTC_TELEMETRY_CONCAT(fptc_trace_span_, __COUNTER__)    \
    {                                                                                     \
        __VA_ARGS__                                                                       \
    }
#else
#define FPTC_TRACE_SPAN(...) static_cast<void>(0)
#endif
