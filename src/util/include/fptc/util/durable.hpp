// Durable file I/O: every persistent artifact survives a crash.
//
// The campaign layer promises that a killed process can resume with
// bit-identical tables (util/journal.hpp).  That promise is only as strong
// as the bytes on disk: a rename without fsync can publish an *empty or
// stale* file after power loss (the metadata reaches the disk before the
// data), and a bare ofstream append can silently drop bytes on a full
// disk.  This module is the single choke point all persistence goes
// through:
//
//   * DurableFile — open temp (O_EXCL, same directory) -> write ->
//     fsync(fd) -> rename over the target -> fsync(parent dir).  Readers
//     never observe a partial file, and after commit() returns the new
//     content survives power loss.  If the object dies before commit() the
//     temp file is unlinked: an aborted write leaves no debris.
//   * durable_append_line — O_APPEND write of one line + fsync, for the
//     run journal.  A crash mid-append can tear the final line (dropped on
//     reload) but never an earlier one.
//
// Every write and fsync funnels through a syscall shim that consults the
// process-wide FaultInjector (util/fault.hpp): deterministic ENOSPC after
// a byte budget, short writes, fsync failures, and a hard _exit at the
// K-th durable write (the kill point swept by tests/run_torture.sh).
//
// Failures surface as IoError carrying a transient/fatal hint that the
// campaign executor's taxonomy maps onto UnitError classes: ENOSPC and
// fsync failures are transient (a retry rewrites from clean state; nothing
// was renamed into place), unexpected syscall errors are fatal.  I/O
// faults therefore retry or degrade one cell (†N) — they never abort a
// campaign or publish a corrupt artifact.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace fptc::util {

/// Exit code of the injected FPTC_FAULT_CRASH_AT_WRITE hard _exit; the
/// torture harness asserts crashed runs die with exactly this code.
inline constexpr int kCrashExitCode = 86;

/// Typed durable-I/O failure.  `transient()` hints the executor taxonomy:
/// true means a re-execution plausibly succeeds (ENOSPC may clear, an
/// fsync failure left only a discarded temp file behind).
class IoError : public std::runtime_error {
public:
    IoError(const std::string& message, bool transient)
        : std::runtime_error(message), transient_(transient)
    {
    }

    [[nodiscard]] bool transient() const noexcept { return transient_; }

private:
    bool transient_;
};

/// One atomic, durable file replacement.  Construction opens a uniquely
/// named temp file next to `path` (same filesystem, so the rename is
/// atomic); write() appends through the fault shim; commit() makes the new
/// content the file's durable state.  Destruction before commit() unlinks
/// the temp file.  Not thread-safe per instance; distinct instances are
/// independent.
class DurableFile {
public:
    explicit DurableFile(std::string path);
    DurableFile(const DurableFile&) = delete;
    DurableFile& operator=(const DurableFile&) = delete;
    ~DurableFile();

    /// Append bytes to the temp file (full-write loop through the shim).
    void write(std::string_view data);

    /// fsync the temp file, rename it over the target, fsync the parent
    /// directory.  After this returns the new content is crash-durable.
    void commit();

    [[nodiscard]] const std::string& path() const noexcept { return target_; }
    [[nodiscard]] const std::string& temp_path() const noexcept { return temp_; }

    /// Convenience: write `content` to `path` in one durable transaction.
    static void write_file(const std::string& path, std::string_view content);

private:
    std::string target_;
    std::string temp_;
    int fd_ = -1;
    bool committed_ = false;
};

/// Durably append `line` + '\n' to `path` (created 0644 if absent): one
/// O_APPEND write through the fault shim, then fsync.  Concurrent callers
/// must serialize externally (RunJournal holds its mutex across the call).
void durable_append_line(const std::string& path, std::string_view line);

/// Advisory cross-process mutex: construction opens `path` (O_CREAT) and
/// blocks in flock(LOCK_EX); destruction unlocks and closes.  Shard workers
/// serialize lease-file transactions and journal merges through one lock
/// file per journal directory.  flock is per open-file-description, so
/// distinct FileLock instances in one process also exclude each other —
/// but the lock is NOT recursive; holding two FileLocks on the same path in
/// one thread deadlocks.  Throws IoError when the lock file cannot be
/// opened (a failed flock itself is fatal too: silent lock elision would
/// corrupt the lease protocol).
class FileLock {
public:
    explicit FileLock(const std::string& path);
    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;
    ~FileLock();

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    int fd_ = -1;
};

/// Directory of `path` ("." for a bare filename, "/" for root children).
[[nodiscard]] std::string parent_dir_of(const std::string& path);

/// Human-readable name of the filesystem hosting `path` ("nfs", "ext4",
/// "tmpfs", ...), via statfs f_type; falls back to the parent directory
/// when `path` does not exist yet and to "unknown(0x<f_type>)" for magics
/// outside the mapped set.  Diagnostic only — never throws.
[[nodiscard]] std::string filesystem_name_of(const std::string& path);

/// Startup probe that flock() actually *works* on the filesystem hosting
/// `path`: opens the file (O_CREAT), takes LOCK_EX | LOCK_NB and releases
/// it.  A refusal with ENOLCK / ENOSYS / EOPNOTSUPP — the signatures of a
/// filesystem without functional advisory locks, classically an NFS mount
/// without lockd — throws EnvError naming the filesystem, because the shard
/// lease protocol built on FileLock would silently stop excluding anything
/// there.  EWOULDBLOCK (a sibling currently holds the lock) proves flock
/// works and passes.  Open failures throw IoError like FileLock itself.
void probe_flock(const std::string& path);

/// Startup scavenge of crash debris: unlink `*.tmp.<pid>.<seq>` files in
/// `dir` whose creating process is gone (kill(pid, 0) == ESRCH).  A crash
/// between a DurableFile's write and its commit leaks exactly such a temp;
/// a live writer's in-flight temps (same or sibling shard process) are left
/// alone.  Returns the number of files removed; a missing or unreadable
/// directory scavenges nothing.
std::size_t scavenge_orphan_temps(const std::string& dir);

/// Throwing writability probe: opens `path` for append (creating it if
/// absent) and closes it, so a bad path fails before any work is sunk.
void probe_appendable(const std::string& path);

/// fsync the directory containing `path`, making a completed rename of
/// `path` itself durable.  No-op errors (e.g. the directory cannot be
/// opened on this filesystem) are ignored: the rename already happened and
/// directory fsync is a best-effort durability upgrade everywhere else.
void fsync_parent_dir(const std::string& path);

} // namespace fptc::util
