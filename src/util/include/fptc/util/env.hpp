// Environment-variable based configuration of campaign scale.
//
// The paper's campaigns (2,760 experiments, weeks of V100 time) are replayed
// here at reduced replication counts by default so the whole bench suite runs
// in minutes on a laptop.  The following knobs restore paper scale:
//
//   FPTC_FULL=1     use the paper's split/seed counts and enable 1500x1500 runs
//   FPTC_SPLITS=n   override the number of dataset splits per campaign
//   FPTC_SEEDS=n    override the number of training seeds per split
//   FPTC_EPOCHS=n   cap the maximum number of training epochs
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace fptc::util {

/// A malformed FPTC_* knob.  Every numeric knob is validated strictly: a
/// non-numeric value, trailing garbage ("12abc"), a negative number, or one
/// that overflows the target type is a hard configuration error carrying the
/// offending name and value — silently falling back to a default would make
/// a typo'd campaign run with the wrong scale/budget and waste hours before
/// anyone notices.
class EnvError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Read a non-negative integer environment variable.  Unset or empty returns
/// std::nullopt; anything else that is not a plain non-negative decimal
/// integer throws EnvError.
[[nodiscard]] std::optional<std::int64_t> env_int(const std::string& name);

/// Read a non-negative, finite floating point environment variable (e.g.
/// FPTC_UNIT_TIMEOUT_S=0.25).  Unset or empty returns std::nullopt;
/// non-numeric, trailing garbage, negative, non-finite or overflowing values
/// throw EnvError.
[[nodiscard]] std::optional<double> env_double(const std::string& name);

/// True when FPTC_FULL is set to a non-zero value.
[[nodiscard]] bool full_scale();

/// Resolved campaign scale for a bench binary.
struct CampaignScale {
    int splits;      ///< dataset splits (paper: 5)
    int seeds;       ///< training seeds per split (paper: 3 supervised, 5 SimCLR)
    int max_epochs;  ///< epoch cap for early-stopped training
    bool full;       ///< FPTC_FULL was requested
};

/// Compute the effective scale given the paper's counts and fast defaults.
[[nodiscard]] CampaignScale resolve_scale(int paper_splits, int paper_seeds, int default_splits,
                                          int default_seeds, int max_epochs = 50);

} // namespace fptc::util
