// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component of the library receives an explicit 64-bit
// seed.  We implement xoshiro256** (Blackman & Vigna) seeded through
// splitmix64, rather than relying on std::mt19937, so that streams are
// identical across standard-library implementations and platforms —
// a prerequisite for bit-reproducible modeling campaigns (Sec. 3.3 of the
// paper tracked 2,760 individual experiments; reproducing any one of them
// requires stable stream semantics).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace fptc::util {

/// splitmix64 step: used to expand a single seed into a full xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator so it can
/// also drive <random> distributions when convenient.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seed via splitmix64 expansion; seed 0 is valid.
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept
    {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept;

    /// Derive an independent child stream.  Used to give each experiment in a
    /// campaign its own stream from (campaign seed, experiment index).
    [[nodiscard]] Rng fork() noexcept;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept;

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Standard normal via Box-Muller (cached second variate).
    [[nodiscard]] double normal() noexcept;

    /// Normal with the given mean / standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) noexcept;

    /// Exponential with the given rate lambda (> 0).
    [[nodiscard]] double exponential(double lambda) noexcept;

    /// Log-normal: exp(normal(mu, sigma)).
    [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

    /// Poisson-distributed count (Knuth for small lambda, normal approx above 64).
    [[nodiscard]] int poisson(double lambda) noexcept;

    /// Bernoulli trial.
    [[nodiscard]] bool bernoulli(double p) noexcept;

    /// Geometric number of failures before first success, p in (0,1].
    [[nodiscard]] int geometric(double p) noexcept;

    /// Sample an index according to the (unnormalized) weights.
    [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept;

    /// In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) noexcept
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Sample k distinct indices from [0, n) (k <= n), in random order.
    [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k) noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

/// Stable 64-bit mix of (seed, stream ids) — handy for deriving per-class or
/// per-flow seeds that do not collide across campaign dimensions.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                                     std::uint64_t c = 0) noexcept;

} // namespace fptc::util
