// CRC32 (IEEE 802.3, reflected 0xEDB88320) shared by every checksummed
// on-disk format in the repo.
//
// Both the checkpoint serializer (nn/serialize, format v2) and the serve
// flow-state snapshot (serve/snapshot) append a CRC32 of their payload so a
// truncated or bit-flipped file is *detected* at load instead of being
// parsed into garbage state.  One table, one convention: incremental
// crc32_update() calls compose (each call finalizes, so feeding the running
// value back in continues the stream) and an empty payload has CRC 0.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fptc::util {

namespace detail {

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc32_table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

inline constexpr auto kCrc32Table = make_crc32_table();

} // namespace detail

/// Continue a CRC32 over `size` more bytes.  Pass 0 to start a stream; the
/// returned value is final (pre/post-conditioning happens per call, so
/// chained calls over chunks equal one call over the concatenation).
[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc, const char* data,
                                                std::size_t size)
{
    crc ^= 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        crc = detail::kCrc32Table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
              (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

/// CRC32 of one contiguous buffer.
[[nodiscard]] inline std::uint32_t crc32(std::string_view data)
{
    return crc32_update(0, data.data(), data.size());
}

} // namespace fptc::util
