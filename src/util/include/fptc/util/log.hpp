// Minimal leveled logging for campaign progress reporting.
//
// The paper's framework tracked every experiment with AimStack; here a tiny
// stderr logger plays the progress-reporting role.  Verbosity is controlled
// with FPTC_LOG (0=quiet, 1=info, 2=debug; default 1).
//
// Thread safety: every emission composes its full line first and writes it
// with a single fwrite under one process-wide mutex, so lines from
// FPTC_JOBS worker threads never interleave mid-line.
#pragma once

#include <string>

namespace fptc::util {

enum class LogLevel { quiet = 0, info = 1, debug = 2 };

/// Current verbosity (resolved once from FPTC_LOG).
[[nodiscard]] LogLevel log_level();

/// Log a line at info level ("[fptc] ..." on stderr).
void log_info(const std::string& message);

/// Log a line at debug level.
void log_debug(const std::string& message);

/// Write a pre-composed (possibly multi-line) block to stderr atomically
/// under the log mutex, with no prefix and no level gate — callers check
/// log_level() themselves (the telemetry profiler report uses this).
void log_raw(const std::string& text);

} // namespace fptc::util
