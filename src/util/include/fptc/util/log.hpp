// Minimal leveled logging for campaign progress reporting.
//
// The paper's framework tracked every experiment with AimStack; here a tiny
// stderr logger plays the progress-reporting role.  Verbosity is controlled
// with FPTC_LOG (0=quiet, 1=info, 2=debug; default 1).
#pragma once

#include <string>

namespace fptc::util {

enum class LogLevel { quiet = 0, info = 1, debug = 2 };

/// Current verbosity (resolved once from FPTC_LOG).
[[nodiscard]] LogLevel log_level();

/// Log a line at info level ("[fptc] ..." on stderr).
void log_info(const std::string& message);

/// Log a line at debug level.
void log_debug(const std::string& message);

} // namespace fptc::util
