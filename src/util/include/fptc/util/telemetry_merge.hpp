// Merging per-shard telemetry artifacts into one fleet-level view.
//
// Each shard worker of a sharded campaign run writes its own trace
// (FPTC_TRACE namespaced to `<path>.shard<i>`) and metrics
// (`<path>.shard<i>` + `.prom`) files — telemetry sinks are process-local
// by design.  After the fleet drains, the coordinator (or the
// fptc_merge_telemetry CLI) folds them into one artifact per kind:
//
//   * Prometheus text: counters and histogram series sum across shards
//     (histogram `_bucket` lines are de-cumulated per shard, summed per
//     upper bound, then re-cumulated so the merged series stays monotone
//     even when shards exposed different sparse bucket sets); gauges take
//     the max (they are high-water marks in this codebase).
//
//   * Chrome traces: event streams concatenate, with each input's
//     "pid" rewritten to its 1-based shard slot so chrome://tracing shows
//     one swim-lane block per process instead of piling every shard onto
//     pid 1.
//
// Outputs are written via the durable I/O layer (atomic replace), and the
// coordinator writes to `<path>.merged[.prom|.json]` rather than in place —
// its own atexit telemetry flush would otherwise clobber a merged file.
#pragma once

#include <string>
#include <vector>

namespace fptc::util {

/// Merge Prometheus text files into `output_path` (atomic durable write).
/// Missing/empty inputs are skipped.  Returns the number of inputs that
/// contributed at least one sample.
std::size_t merge_prometheus_files(const std::vector<std::string>& input_paths,
                                   const std::string& output_path);

/// Merge Chrome trace JSON files (as written by chrome_trace_json()) into
/// `output_path`, rewriting input i's events to pid i+1.  Missing/empty
/// inputs are skipped.  Returns the number of inputs that contributed
/// events.
std::size_t merge_trace_files(const std::vector<std::string>& input_paths,
                              const std::string& output_path);

} // namespace fptc::util
