// Signal-safe campaign shutdown.
//
// A sharded fleet run is managed with process signals: the coordinator
// forwards SIGTERM to its workers, operators Ctrl-C interactive runs, and
// schedulers kill over-budget jobs.  A shard that dies without flushing its
// telemetry sinks or journaling how far it got wastes the post-mortem; this
// module makes SIGTERM/SIGINT *cooperative* instead of fatal:
//
//   * install_shutdown_handlers() (idempotent, called by every
//     CampaignExecutor) installs handlers that only set an atomic flag —
//     nothing async-signal-unsafe runs in signal context,
//   * the executor's scheduling loops poll shutdown_signal() and trip the
//     campaign-wide CancelToken, so running units unwind at their next
//     per-batch poll,
//   * run_all() then appends a final `__shutdown__` journal record (signal,
//     progress counters), flushes trace/metrics/profile sinks, and exits
//     with the conventional 128+signum status — a killed shard still leaves
//     a parseable journal and valid telemetry artifacts behind.
//
// A second SIGTERM/SIGINT is an operator insisting: the handler _exits
// immediately with 128+signum (skipping flushes), so a wedged unit cannot
// make the process unkillable short of SIGKILL.
#pragma once

namespace fptc::util {

/// Install the SIGTERM/SIGINT handlers once per process.  Safe to call
/// repeatedly and from multiple threads.
void install_shutdown_handlers();

/// Signal number of the first SIGTERM/SIGINT received (0 = none yet).
[[nodiscard]] int shutdown_signal() noexcept;

/// True once a shutdown signal has been received.
[[nodiscard]] bool shutdown_requested() noexcept;

/// Conventional exit status for a signal-driven shutdown (128 + signum).
[[nodiscard]] int shutdown_exit_code(int signum) noexcept;

/// Clear the latched signal so later tests observe a clean state.  Test
/// isolation only; production code never un-requests a shutdown.
void reset_shutdown_for_tests() noexcept;

} // namespace fptc::util
