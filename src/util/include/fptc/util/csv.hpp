// Minimal CSV emission for campaign artifacts.
//
// The paper releases per-run logs alongside aggregate tables; the campaign
// runner mirrors that by optionally dumping one CSV row per experiment.
#pragma once

#include <string>
#include <vector>

namespace fptc::util {

/// Accumulates rows and writes an RFC-4180-ish CSV (quotes fields containing
/// separators or quotes).
class CsvWriter {
public:
    explicit CsvWriter(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Serialize to a string (header + rows).
    [[nodiscard]] std::string to_string() const;

    /// Write to a file; throws std::runtime_error on I/O failure.
    void write_file(const std::string& path) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Quote a single CSV field if needed.
[[nodiscard]] std::string csv_escape(const std::string& field);

} // namespace fptc::util
