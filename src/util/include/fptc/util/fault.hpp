// Deterministic fault injection for testing recovery paths.
//
// The fault-tolerance layer (divergence guards, checksummed checkpoints,
// CSV quarantine, the supervised campaign executor) only earns its keep if
// the failure paths themselves are exercised regularly.  This module
// provides a seeded, deterministic injector that the guarded code paths
// consult at well-defined points:
//
//   * training steps may have their loss forced to NaN,
//   * checkpoint writes may be truncated mid-stream,
//   * CSV rows may be mangled before parsing (lenient reads only),
//   * campaign unit executions may stall (hang until the watchdog deadline
//     kills them) or throw a transient UnitError (exercising the executor's
//     retry/backoff path).
//
// A process-wide injector is configured once from environment variables:
//
//   FPTC_FAULT_SEED=n             stream seed (default 0)
//   FPTC_FAULT_NAN_EVERY=k        force every k-th guarded training step's
//                                 loss to NaN (0 = off)
//   FPTC_FAULT_TRUNCATE_WRITES=n  truncate the first n checkpoint writes
//   FPTC_FAULT_CSV_PERCENT=p      mangle ~p% of CSV rows in lenient reads
//   FPTC_FAULT_STALL_UNITS=n      stall the first n campaign unit executions
//   FPTC_FAULT_TRANSIENT_UNITS=n  fail the first n campaign unit executions
//                                 with a transient error
//
// All injections are counted per class so campaign summaries can report
// exactly how many faults were injected and survived.
//
// Thread safety: the injector is consulted from executor worker threads
// (unit-level faults) and from the training loops they run (NaN losses), so
// every method is internally synchronized.  Note that with FPTC_JOBS > 1 the
// *step-granular* classes (NaN losses, CSV rows) interleave across workers
// in scheduling order, so which unit absorbs a given injection is no longer
// deterministic; the unit-granular classes (stall, transient) stay
// deterministic in *count* — exactly the first n executions are hit.
#pragma once

#include "fptc/util/rng.hpp"

#include <cstdint>
#include <mutex>
#include <string>

namespace fptc::util {

/// What to inject.  Default-constructed plan injects nothing.
struct FaultPlan {
    std::uint64_t seed = 0;        ///< seed of the injector's own stream
    int nan_loss_every = 0;        ///< every k-th guarded step diverges (0 = off)
    int truncate_writes = 0;       ///< first n checkpoint writes are truncated
    double csv_row_percent = 0.0;  ///< % of CSV rows mangled in lenient reads
    int stall_units = 0;           ///< first n unit executions stall
    int transient_units = 0;       ///< first n unit executions throw transient
};

/// Tallies of injected faults since the last configure().
struct FaultCounters {
    std::uint64_t nan_losses = 0;
    std::uint64_t truncated_writes = 0;
    std::uint64_t corrupted_csv_rows = 0;
    std::uint64_t stalled_units = 0;
    std::uint64_t transient_units = 0;

    [[nodiscard]] std::uint64_t total() const noexcept
    {
        return nan_losses + truncated_writes + corrupted_csv_rows + stalled_units +
               transient_units;
    }
};

/// Seeded deterministic fault injector.  Thread-safe: see the module note.
class FaultInjector {
public:
    /// Inert injector (all inject_* return false).
    FaultInjector() = default;

    explicit FaultInjector(const FaultPlan& plan);

    /// Replace the plan and reset counters and the injection stream.
    void configure(const FaultPlan& plan);

    /// True when any fault class is armed.
    [[nodiscard]] bool enabled() const noexcept;

    /// Consulted once per guarded training step; true = treat this step's
    /// loss as NaN.  Counter-based: fires on every k-th call.
    [[nodiscard]] bool inject_nan_loss();

    /// Consulted once per checkpoint write; true = truncate the write.
    [[nodiscard]] bool inject_truncated_write();

    /// Consulted once per CSV row in lenient reads; Bernoulli(p).
    [[nodiscard]] bool inject_csv_corruption();

    /// Consulted once per campaign unit execution (including retries); true =
    /// this execution should stall until the watchdog kills it.
    [[nodiscard]] bool inject_unit_stall();

    /// Consulted once per campaign unit execution; true = this execution
    /// should fail with a transient UnitError before doing any work.
    [[nodiscard]] bool inject_unit_transient();

    [[nodiscard]] FaultCounters counters() const;

    /// One-line report, e.g. "nan_loss=3 truncated_writes=1 csv_rows=12
    /// stalled_units=1 transient_units=2".
    [[nodiscard]] std::string summary() const;

private:
    mutable std::mutex mutex_;
    FaultPlan plan_{};
    Rng rng_{0};
    FaultCounters counters_{};
    std::uint64_t training_steps_ = 0;
    std::uint64_t unit_executions_stall_ = 0;
    std::uint64_t unit_executions_transient_ = 0;
};

/// The process-wide injector.  First use configures it from the
/// FPTC_FAULT_* environment variables; tests may reconfigure it directly.
[[nodiscard]] FaultInjector& fault_injector();

/// Parse the FPTC_FAULT_* environment variables into a plan.
[[nodiscard]] FaultPlan fault_plan_from_env();

} // namespace fptc::util
