// Deterministic fault injection for testing recovery paths.
//
// The fault-tolerance layer (divergence guards, checksummed checkpoints,
// CSV quarantine, the supervised campaign executor) only earns its keep if
// the failure paths themselves are exercised regularly.  This module
// provides a seeded, deterministic injector that the guarded code paths
// consult at well-defined points:
//
//   * training steps may have their loss forced to NaN,
//   * checkpoint writes may be truncated mid-stream,
//   * CSV rows may be mangled before parsing (lenient reads only),
//   * campaign unit executions may stall (hang until the watchdog deadline
//     kills them) or throw a transient UnitError (exercising the executor's
//     retry/backoff path),
//   * the durable I/O layer (util/durable.hpp) may fail at the syscall
//     level: ENOSPC after a cumulative byte budget, short (partial) writes,
//     fsync failures, and a hard _exit at the K-th durable write (the
//     kill-point knob of the crash-consistency torture harness),
//   * the memory accountant (util/membudget.hpp) may refuse reservations:
//     after a per-unit-execution byte budget (simulated memory pressure
//     inside a unit), or for the first n submitted units outright
//     (exercising the executor's shrink-then-degrade OOM path).
//
// A process-wide injector is configured once from environment variables:
//
//   FPTC_FAULT_SEED=n             stream seed (default 0)
//   FPTC_FAULT_NAN_EVERY=k        force every k-th guarded training step's
//                                 loss to NaN (0 = off)
//   FPTC_FAULT_TRUNCATE_WRITES=n  truncate the first n checkpoint writes
//   FPTC_FAULT_CSV_PERCENT=p      mangle ~p% of CSV rows in lenient reads
//   FPTC_FAULT_STALL_UNITS=n      stall the first n campaign unit executions
//   FPTC_FAULT_TRANSIENT_UNITS=n  fail the first n campaign unit executions
//                                 with a transient error
//   FPTC_FAULT_ENOSPC_AFTER_BYTES=n  durable writes fail with ENOSPC once n
//                                 cumulative bytes went through the shim
//   FPTC_FAULT_SHORT_WRITES=n     the first n durable writes only take half
//                                 their bytes (exercises the write loop)
//   FPTC_FAULT_FSYNC_FAIL=n       the first n durable fsyncs fail with EIO
//   FPTC_FAULT_CRASH_AT_WRITE=k   hard _exit mid-payload at the k-th durable
//                                 write of the process (simulated power loss)
//   FPTC_FAULT_ALLOC_FAIL_AFTER_MB=m  the memory accountant refuses further
//                                 reservations once a unit execution has
//                                 charged m MB (per-execution byte scope:
//                                 the executor resets it at each attempt)
//   FPTC_FAULT_ALLOC_FAIL_UNITS=n refuse the first reservation of the first
//                                 n *submitted* units (by submission index,
//                                 initial executions only — a shrink retry
//                                 is spared, so targeted units shrink once
//                                 and then succeed deterministically)
//   FPTC_FAULT_KILL_SHARD=s:k     SIGKILL shard worker s right after its k-th
//                                 unit execution finishes but *before* the
//                                 journal commit — the worker dies holding
//                                 its lease with maximal lost work (plain
//                                 "k" targets shard 0; sequential runs and
//                                 other shards are unaffected)
//   FPTC_FAULT_SERVE_STALL_BACKEND=n  the first n streaming-serve backend
//                                 classify calls stall until the batch
//                                 deadline trips them (or a hard cap
//                                 elapses) — exercises the circuit breaker's
//                                 degradation ladder
//   FPTC_FAULT_SERVE_MANGLE_PACKETS=p mangle ~p% of generated stream packet
//                                 events (NaN/negative timestamps,
//                                 out-of-range sizes); the serve ingest
//                                 validation must quarantine every one
//   FPTC_FAULT_SERVE_BURST=k      every 64th stream event erupts into k
//                                 extra same-timestamp packets (a synthetic
//                                 microburst driving queue_full shedding)
//   FPTC_FAULT_SERVE_HANG=k       the serve classifier thread wedges (stops
//                                 heartbeating) at its k-th batch; the
//                                 in-worker watchdog must detect the stall
//                                 and hang-exit so the supervisor restarts
//   FPTC_FAULT_KILL_SERVE=k       SIGKILL the serve worker right after its
//                                 k-th flow-state snapshot *commits* — the
//                                 restarted worker must restore that
//                                 snapshot and keep the accounting invariant
//                                 across generations (commit-indexed so a
//                                 snapshot provably exists at the kill)
//
// All injections are counted per class so campaign summaries can report
// exactly how many faults were injected and survived.
//
// Thread safety: the injector is consulted from executor worker threads
// (unit-level faults) and from the training loops they run (NaN losses), so
// every method is internally synchronized.  Note that with FPTC_JOBS > 1 the
// *step-granular* classes (NaN losses, CSV rows) interleave across workers
// in scheduling order, so which unit absorbs a given injection is no longer
// deterministic; the unit-granular classes (stall, transient) stay
// deterministic in *count* — exactly the first n executions are hit.  The
// alloc classes are deterministic in *target* for any FPTC_JOBS: AFTER_MB
// scopes its byte budget per unit execution (thread-local, reset by
// begin_alloc_scope()), and ALLOC_FAIL_UNITS selects units by submission
// index, so the same units are hit regardless of worker interleaving.
#pragma once

#include "fptc/util/rng.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace fptc::util {

/// What to inject.  Default-constructed plan injects nothing.
struct FaultPlan {
    std::uint64_t seed = 0;        ///< seed of the injector's own stream
    int nan_loss_every = 0;        ///< every k-th guarded step diverges (0 = off)
    int truncate_writes = 0;       ///< first n checkpoint writes are truncated
    double csv_row_percent = 0.0;  ///< % of CSV rows mangled in lenient reads
    int stall_units = 0;           ///< first n unit executions stall
    int transient_units = 0;       ///< first n unit executions throw transient
    std::int64_t enospc_after_bytes = 0;  ///< durable-write byte budget before ENOSPC (0 = off)
    int short_writes = 0;          ///< first n durable writes are cut to half
    int fsync_failures = 0;        ///< first n durable fsyncs fail with EIO
    int crash_at_write = 0;        ///< _exit at the k-th durable write (0 = off)
    std::int64_t alloc_fail_after_mb = 0;  ///< per-unit-execution charge budget in MB (0 = off)
    int alloc_fail_units = 0;      ///< refuse the first reservation of units 0..n-1 (0 = off)
    int kill_shard = -1;           ///< shard id to SIGKILL (-1 = off)
    int kill_shard_at_unit = 0;    ///< kill after the target shard's k-th unit (0 = off)
    int serve_stall_backend = 0;   ///< first n serve backend classify calls stall
    double serve_mangle_percent = 0.0;  ///< % of stream packet events mangled
    int serve_burst = 0;           ///< extra packets injected per burst point (0 = off)
    int serve_hang_at_batch = 0;   ///< classifier wedges at its k-th batch (0 = off)
    int kill_serve_at_snapshot = 0; ///< SIGKILL worker after its k-th snapshot commit (0 = off)
};

/// Tallies of injected faults since the last configure().
struct FaultCounters {
    std::uint64_t nan_losses = 0;
    std::uint64_t truncated_writes = 0;
    std::uint64_t corrupted_csv_rows = 0;
    std::uint64_t stalled_units = 0;
    std::uint64_t transient_units = 0;
    std::uint64_t enospc_failures = 0;   ///< durable writes refused with ENOSPC
    std::uint64_t short_write_clamps = 0;///< durable writes cut short
    std::uint64_t fsync_failures = 0;    ///< durable fsyncs failed with EIO
    std::uint64_t alloc_rejections = 0;  ///< accountant reservations refused (AFTER_MB)
    std::uint64_t alloc_unit_failures = 0; ///< units targeted by ALLOC_FAIL_UNITS
    std::uint64_t shard_kills = 0;       ///< shard-kill trigger points reached
    std::uint64_t serve_backend_stalls = 0;  ///< serve backend classify calls stalled
    std::uint64_t serve_mangled_packets = 0; ///< stream packet events mangled
    std::uint64_t serve_bursts = 0;          ///< burst points injected into the stream
    std::uint64_t serve_hangs = 0;           ///< classifier wedge points reached
    std::uint64_t serve_kills = 0;           ///< post-snapshot SIGKILL points reached

    [[nodiscard]] std::uint64_t total() const noexcept
    {
        return nan_losses + truncated_writes + corrupted_csv_rows + stalled_units +
               transient_units + enospc_failures + short_write_clamps + fsync_failures +
               alloc_rejections + alloc_unit_failures + shard_kills + serve_backend_stalls +
               serve_mangled_packets + serve_bursts + serve_hangs + serve_kills;
    }
};

/// Seeded deterministic fault injector.  Thread-safe: see the module note.
class FaultInjector {
public:
    /// Inert injector (all inject_* return false).
    FaultInjector() = default;

    explicit FaultInjector(const FaultPlan& plan);

    /// Replace the plan and reset counters and the injection stream.
    void configure(const FaultPlan& plan);

    /// True when any fault class is armed.
    [[nodiscard]] bool enabled() const noexcept;

    /// Consulted once per guarded training step; true = treat this step's
    /// loss as NaN.  Counter-based: fires on every k-th call.
    [[nodiscard]] bool inject_nan_loss();

    /// Consulted once per checkpoint write; true = truncate the write.
    [[nodiscard]] bool inject_truncated_write();

    /// Consulted once per CSV row in lenient reads; Bernoulli(p).
    [[nodiscard]] bool inject_csv_corruption();

    /// Consulted once per campaign unit execution (including retries); true =
    /// this execution should stall until the watchdog kills it.
    [[nodiscard]] bool inject_unit_stall();

    /// Consulted once per campaign unit execution; true = this execution
    /// should fail with a transient UnitError before doing any work.
    [[nodiscard]] bool inject_unit_transient();

    /// Consulted by the durable I/O shim before every write with the byte
    /// count about to go to disk; true = the cumulative budget
    /// (enospc_after_bytes) is exhausted and the write must fail with
    /// ENOSPC.  Bytes are accumulated across the whole process.
    [[nodiscard]] bool inject_enospc(std::size_t bytes);

    /// Clamp a durable write length: the first short_writes calls return
    /// half the requested length (>= 1), exercising the caller's
    /// partial-write loop.  Later calls return `length` unchanged.
    [[nodiscard]] std::size_t clamp_write(std::size_t length);

    /// Consulted once per durable fsync; true = fail it with EIO.
    [[nodiscard]] bool inject_fsync_failure();

    /// Consulted once per durable write; true exactly at the k-th
    /// (crash_at_write) durable write of the process: the caller must write
    /// a partial payload and _exit — the kill point of the torture harness.
    [[nodiscard]] bool inject_crash_at_write();

    /// Consulted by MemBudget::reserve with every charge's byte count; true =
    /// the calling thread's current allocation scope has exhausted its
    /// alloc_fail_after_mb budget and the reservation must be refused.
    /// Lock-free fast path (one atomic load when the class is unarmed);
    /// bytes accumulate in a thread-local scope reset by begin_alloc_scope(),
    /// so the refusal point depends only on the unit's own charges — the
    /// same unit fails for any FPTC_JOBS.
    [[nodiscard]] bool inject_alloc_fail(std::size_t bytes);

    /// Reset the calling thread's allocation-fault byte scope.  The executor
    /// calls this at the start of every unit execution (each attempt).
    void begin_alloc_scope();

    /// Consulted once per initial (non-shrunk) unit execution with the
    /// unit's submission index; true = this unit's first reservation must be
    /// refused (alloc_fail_units class).  Index-targeted, so deterministic
    /// for any FPTC_JOBS.
    [[nodiscard]] bool inject_unit_alloc_fail(std::size_t unit_index);

    /// Consulted by a shard worker after each unit execution finishes,
    /// before the journal commit, with its own shard id; true exactly once —
    /// when shard `kill_shard` completes its kill_shard_at_unit-th unit.
    /// The caller must then raise(SIGKILL): the lease stays held, the
    /// finished work is lost, and a sibling must steal the unit.
    [[nodiscard]] bool inject_shard_kill(int shard_id);

    /// Consulted once per streaming-serve backend classify call; true = this
    /// call must stall (sleep polling its CancelToken) until the batch
    /// deadline trips it or the caller's hard cap elapses.  First-n
    /// semantics, like the unit stall class.
    [[nodiscard]] bool inject_serve_backend_stall();

    /// Consulted once per generated stream packet event; Bernoulli(p) from
    /// the injector's own stream: true = the event must be mangled (NaN or
    /// negative timestamp, out-of-range size) before it reaches ingest.
    [[nodiscard]] bool inject_serve_mangle();

    /// Consulted once per generated stream packet event; returns the number
    /// of extra same-timestamp packets to inject at this point (0 almost
    /// always; serve_burst at every 64th event when the class is armed).
    [[nodiscard]] int inject_serve_burst();

    /// Consulted once per serve classifier batch; true exactly at the k-th
    /// (serve_hang_at_batch) batch: the classifier must wedge — stop
    /// heartbeating and spin — so the watchdog's stall detection fires.
    [[nodiscard]] bool inject_serve_hang();

    /// Consulted once per committed serve flow-state snapshot; true exactly
    /// at the k-th (kill_serve_at_snapshot) commit: the worker must
    /// raise(SIGKILL), leaving the just-committed snapshot as the restart
    /// point with maximal in-flight loss.
    [[nodiscard]] bool inject_serve_kill();

    [[nodiscard]] FaultCounters counters() const;

    /// One-line report, e.g. "nan_loss=3 truncated_writes=1 csv_rows=12
    /// stalled_units=1 transient_units=2".
    [[nodiscard]] std::string summary() const;

private:
    mutable std::mutex mutex_;
    FaultPlan plan_{};
    Rng rng_{0};
    FaultCounters counters_{};
    std::uint64_t training_steps_ = 0;
    std::uint64_t unit_executions_stall_ = 0;
    std::uint64_t unit_executions_transient_ = 0;
    std::uint64_t durable_bytes_ = 0;   ///< cumulative bytes through the shim
    std::uint64_t durable_writes_ = 0;  ///< shim write calls (crash kill-point index)
    std::uint64_t shard_unit_completions_ = 0;  ///< kill-shard trigger index
    std::uint64_t serve_backend_calls_ = 0;     ///< serve stall first-n index
    std::uint64_t serve_stream_events_ = 0;     ///< burst cadence counter (every 64th)
    std::uint64_t serve_batches_ = 0;           ///< serve-hang trigger index
    std::uint64_t serve_snapshot_commits_ = 0;  ///< serve-kill trigger index

    // Alloc-fault state lives outside the mutex: inject_alloc_fail sits on
    // the tensor-allocation hot path, so the armed check is a single relaxed
    // atomic load and the per-scope byte tally is thread-local (keyed by an
    // epoch that configure() bumps, which lazily resets every thread's scope).
    std::atomic<std::uint64_t> alloc_fail_threshold_bytes_{0};  ///< 0 = unarmed
    std::atomic<std::uint64_t> alloc_scope_epoch_{1};
    std::atomic<std::uint64_t> alloc_rejections_{0};
};

/// The process-wide injector.  First use configures it from the
/// FPTC_FAULT_* environment variables; tests may reconfigure it directly.
[[nodiscard]] FaultInjector& fault_injector();

/// Parse the FPTC_FAULT_* environment variables into a plan.
[[nodiscard]] FaultPlan fault_plan_from_env();

} // namespace fptc::util
