// ASCII heatmap rendering.
//
// Figures 1, 3, 4 and 8 of the paper are images (flowpics, confusion
// matrices, KDEs).  The bench harnesses regenerate them as terminal
// heatmaps: each cell is mapped to a shade character after the same
// log-scale min/max normalization the paper applies to flowpics.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fptc::util {

/// Rendering options for render_heatmap().
struct HeatmapOptions {
    bool log_scale = true;      ///< apply log1p before normalizing (paper's flowpic rendering)
    std::size_t max_side = 32;  ///< downsample larger matrices to at most this many rows/cols
    bool show_scale = true;     ///< append a legend line with the min/max values
};

/// Render a row-major matrix (rows x cols) as an ASCII heatmap.  Values are
/// normalized between the matrix min and max; darker shades mean larger
/// values, matching Fig. 1's description ("higher packets count values having
/// darker shades").
[[nodiscard]] std::string render_heatmap(std::span<const float> values, std::size_t rows,
                                         std::size_t cols, const HeatmapOptions& options = {});

/// Render a labeled confusion matrix (row-normalized shares in [0,1]) with
/// numeric annotations, as in Fig. 3.
[[nodiscard]] std::string render_confusion(const std::vector<std::vector<double>>& matrix,
                                           const std::vector<std::string>& labels);

/// Render a 1-d curve (e.g. a KDE) as a fixed-height ASCII chart.
[[nodiscard]] std::string render_curve(std::span<const double> xs, std::span<const double> ys,
                                       std::size_t width = 72, std::size_t height = 12);

} // namespace fptc::util
