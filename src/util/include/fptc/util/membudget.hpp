// Budgeted memory accounting for campaign workloads.
//
// The paper's campaigns sweep thousands of training units across three
// flowpic resolutions, and the 1500x1500 cells dominate memory by ~3 orders
// of magnitude — the workload shape where a production system dies not from
// crashes but from the kernel OOM killer.  Following the resource-accounting
// discipline of large training stacks (PyTorch's caching-allocator budget
// reporting, XGBoost's external-memory mode), this module makes the cost of
// every large buffer explicit:
//
//   * MemBudget    — a process-wide atomic accountant.  Owners of large
//                    buffers reserve() bytes before (logically) allocating
//                    and release() them on destruction; when FPTC_MEM_BUDGET_MB
//                    is set, a reservation that would push in_use() past the
//                    budget is refused with BudgetExceeded instead of letting
//                    the process grow until SIGKILL.
//   * Charge       — the RAII handle the hot owners hold (nn::Tensor
//                    storage, flowpic::Flowpic grids, core::SampleSet images,
//                    GBT histogram/margin buffers).  Copying a Charge
//                    re-reserves (a copied tensor really does double the
//                    footprint); moving transfers the reservation; the
//                    destructor credits it back, so accounting is balanced
//                    by construction.
//   * BudgetExceeded — typed refusal carrying requested/available bytes and
//                    a transient hint.  core::classify_exception routes it
//                    into the executor's retry/degrade taxonomy: the unit is
//                    retried once at half batch size, then degraded (†N)
//                    like a timeout — the campaign never aborts.
//
// Enforcement is at the accounting layer, not the allocator: untracked
// allocations (flow vectors, STL bookkeeping) do not count against the
// budget.  The budget therefore bounds the *accounted* working set — the
// flowpic grids, sample sets and tensors that dominate a campaign's
// footprint — which is what the executor's admission control reasons about.
//
// Determinism: with FPTC_JOBS=1 every charge is sequential, so peak_bytes()
// and the refusal points are exactly reproducible run to run.  The fault
// classes FPTC_FAULT_ALLOC_FAIL_AFTER_MB / _UNITS (util/fault.hpp) scope
// their byte budgets per unit execution, so injected refusals hit the same
// units for any FPTC_JOBS value.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fptc::util {

/// Thrown when a reservation would exceed the memory budget (or an injected
/// allocation fault refuses it).  Transient by default: memory pressure
/// passes once concurrently running units release their charges, and a
/// shrunk batch size lowers the unit's own footprint.
class BudgetExceeded : public std::runtime_error {
public:
    BudgetExceeded(const std::string& what_for, std::size_t requested_bytes,
                   std::size_t available_bytes, bool transient = true)
        : std::runtime_error("memory budget exceeded (" + what_for + "): requested " +
                             std::to_string(requested_bytes) + " bytes, available " +
                             std::to_string(available_bytes)),
          requested_(requested_bytes), available_(available_bytes), transient_(transient)
    {
    }

    [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
    [[nodiscard]] std::size_t available() const noexcept { return available_; }
    [[nodiscard]] bool transient() const noexcept { return transient_; }

private:
    std::size_t requested_;
    std::size_t available_;
    bool transient_;
};

/// Process-wide atomic memory accountant.  All methods are thread-safe and
/// lock-free (a handful of relaxed/acq-rel atomics per call), so charging on
/// the tensor hot path is cheap.
class MemBudget {
public:
    MemBudget() = default;

    /// Cap accounted bytes (0 = unlimited).  Replaces the current budget;
    /// already-reserved bytes are unaffected.
    void set_budget_bytes(std::size_t bytes) noexcept
    {
        budget_.store(bytes, std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t budget_bytes() const noexcept
    {
        return budget_.load(std::memory_order_relaxed);
    }

    /// Charge `bytes` against the budget.  Throws BudgetExceeded when the
    /// budget is set and the reservation would push in_use() past it, or
    /// when the fault injector refuses the allocation
    /// (FPTC_FAULT_ALLOC_FAIL_AFTER_MB).  `what` names the owner for the
    /// exception message (string literal; not stored).
    void reserve(std::size_t bytes, const char* what = "alloc");

    /// Credit a prior reservation back.  Never throws; releasing more than
    /// reserved clamps at zero (indicates an accounting bug; see tests).
    void release(std::size_t bytes) noexcept;

    /// Currently reserved bytes.  Returns to zero when every Charge has been
    /// destroyed — the balance check the test harness asserts in teardown.
    [[nodiscard]] std::size_t in_use() const noexcept
    {
        return in_use_.load(std::memory_order_acquire);
    }

    /// High-water mark of in_use() since the last reset_peak().
    [[nodiscard]] std::size_t peak_bytes() const noexcept
    {
        return peak_.load(std::memory_order_acquire);
    }

    /// Cumulative bytes ever reserved (monotonic; not reset by release).
    [[nodiscard]] std::uint64_t reserved_total() const noexcept
    {
        return reserved_total_.load(std::memory_order_relaxed);
    }

    /// Reservations refused (budget or injected fault) since construction.
    [[nodiscard]] std::uint64_t rejections() const noexcept
    {
        return rejections_.load(std::memory_order_relaxed);
    }

    /// Restart the high-water mark from the current in_use().
    void reset_peak() noexcept
    {
        peak_.store(in_use_.load(std::memory_order_acquire), std::memory_order_release);
    }

    /// One-line report, e.g. "in_use=0 peak=1048576 budget=16777216 rejections=2".
    [[nodiscard]] std::string summary() const;

private:
    std::atomic<std::size_t> budget_{0};
    std::atomic<std::size_t> in_use_{0};
    std::atomic<std::size_t> peak_{0};
    std::atomic<std::uint64_t> reserved_total_{0};
    std::atomic<std::uint64_t> rejections_{0};
};

/// The process-wide accountant.  First use reads FPTC_MEM_BUDGET_MB (0 or
/// unset = unlimited); tests may set_budget_bytes() directly.
[[nodiscard]] MemBudget& mem_budget();

/// RAII reservation against the process-wide accountant.  Value semantics
/// mirror the buffer the charge covers: copying re-reserves (may throw
/// BudgetExceeded), moving transfers, the destructor releases.  A
/// default-constructed Charge covers zero bytes, so aggregate owners
/// (core::SampleSet) stay aggregate-initializable.
class Charge {
public:
    Charge() = default;

    explicit Charge(std::size_t bytes, const char* what = "alloc") : bytes_(bytes), what_(what)
    {
        mem_budget().reserve(bytes_, what_);
    }

    Charge(const Charge& other) : bytes_(other.bytes_), what_(other.what_)
    {
        mem_budget().reserve(bytes_, what_);
    }

    Charge(Charge&& other) noexcept : bytes_(other.bytes_), what_(other.what_)
    {
        other.bytes_ = 0;
    }

    Charge& operator=(const Charge& other)
    {
        if (this != &other) {
            // Reserve-then-release so a refused copy leaves *this intact.
            mem_budget().reserve(other.bytes_, other.what_);
            mem_budget().release(bytes_);
            bytes_ = other.bytes_;
            what_ = other.what_;
        }
        return *this;
    }

    Charge& operator=(Charge&& other) noexcept
    {
        if (this != &other) {
            mem_budget().release(bytes_);
            bytes_ = other.bytes_;
            what_ = other.what_;
            other.bytes_ = 0;
        }
        return *this;
    }

    ~Charge() { mem_budget().release(bytes_); }

    /// Reserve `delta` more bytes on top of the current charge (incremental
    /// growth, e.g. SampleSet image pushes).  Throws BudgetExceeded without
    /// changing the charge when refused.
    void grow(std::size_t delta)
    {
        mem_budget().reserve(delta, what_);
        bytes_ += delta;
    }

    /// Credit `delta` bytes back (e.g. quarantined samples scrubbed from a
    /// set).  Clamps at zero; never throws.
    void shrink(std::size_t delta) noexcept
    {
        const std::size_t credited = delta < bytes_ ? delta : bytes_;
        mem_budget().release(credited);
        bytes_ -= credited;
    }

    /// Release everything and reserve `bytes` afresh.
    void reset(std::size_t bytes = 0)
    {
        mem_budget().release(bytes_);
        bytes_ = 0;
        if (bytes > 0) {
            mem_budget().reserve(bytes, what_);
            bytes_ = bytes;
        }
    }

    [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

private:
    std::size_t bytes_ = 0;
    const char* what_ = "alloc";  ///< owner label (string literal, never freed)
};

} // namespace fptc::util
