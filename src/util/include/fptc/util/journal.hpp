// Run journal: crash-safe campaign progress on disk.
//
// The paper's evaluation is a long campaign of repeated trainings (splits x
// seeds x configurations, Sec. 4.2-4.5); a single killed process should not
// discard hours of finished CPU work.  A RunJournal records each completed
// (config, split, seed) unit as one JSON line in an append-only file, so a
// re-launched bench binary can skip finished runs and rebuild its tables
// from the recorded metrics — producing output identical to an
// uninterrupted run with the same seeds.
//
// Durability model: each record() appends one line via the durable I/O
// layer (util/durable.hpp: one O_APPEND write + fsync), so a kill or power
// loss loses at most the in-flight run.  A crash mid-append leaves a torn
// final line; reload detects and drops it (counted in discarded_lines()).
// compact() rewrites the journal atomically and durably (temp file + fsync
// + rename + parent-dir fsync) to shed torn or superseded lines; a crash
// anywhere inside compact() leaves either the old or the new journal fully
// readable, never a mix.
//
// Line format (flat JSON object, "key" is reserved):
//   {"key":"table4|res=32|aug=rotate|split=0|seed=1","script":"98.25",...}
//
// Thread safety: the campaign executor commits finished units from a worker
// pool, so RunJournal and CampaignJournal synchronize internally — each
// record() appends and flushes its one line under the journal mutex, so
// concurrent appends never interleave bytes within a line.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace fptc::util {

/// One committed unit of campaign work.
struct JournalRecord {
    std::string key;                            ///< unique unit id within the campaign
    std::map<std::string, std::string> fields;  ///< recorded metrics (flat, string-valued)
};

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Serialize a record to one JSON line (no trailing newline).
[[nodiscard]] std::string to_json_line(const JournalRecord& record);

/// Parse one journal line; std::nullopt on torn/malformed input.
[[nodiscard]] std::optional<JournalRecord> parse_json_line(const std::string& line);

/// Read every parseable record of a journal file (missing file = empty).
/// Torn/malformed lines are skipped and counted into `*discarded` when
/// given.  Later lines with a repeated key supersede earlier ones, exactly
/// like RunJournal's load.
[[nodiscard]] std::vector<JournalRecord> read_journal_records(const std::string& path,
                                                              std::size_t* discarded = nullptr);

// ---------------------------------------------------------------------------
// Shard namespacing: a sharded campaign (FPTC_SHARDS) keeps one journal
// *family* per base path — workers append to `<base>.shard<i>` so the hot
// append path never contends across processes, claims/heartbeats live in
// `<base>.leases`, and every cross-process transaction (lease ops, merges)
// serializes on the `<base>.lock` flock file.  merge_shard_journals folds
// the shard files back into the base journal so a sequential resume (or the
// coordinator's aggregation pass) sees one flat record set.
// ---------------------------------------------------------------------------

/// Append target of shard `shard_id`: `<base>.shard<i>`.
[[nodiscard]] std::string shard_journal_path(const std::string& base, int shard_id);

/// Lease journal shared by all shards: `<base>.leases`.
[[nodiscard]] std::string shard_lease_path(const std::string& base);

/// flock file serializing lease transactions and merges: `<base>.lock`.
[[nodiscard]] std::string shard_lock_path(const std::string& base);

/// Existing `<base>.shard<i>` files, sorted by shard id (companion files
/// like `<base>.shard0.out` are excluded).
[[nodiscard]] std::vector<std::string> list_shard_journals(const std::string& base);

/// Fold every existing shard journal into the base journal: under the
/// family's file lock, union base + shard records (shard files win over the
/// base, later shard ids over earlier — committed fields are deterministic
/// per key, so the choice only breaks exact ties) and rewrite the base
/// atomically.  With `remove_shards`, the absorbed shard files and the
/// lease/lock files are unlinked afterwards — only safe once every worker
/// has exited.  Returns the number of records in the merged base.
std::size_t merge_shard_journals(const std::string& base, bool remove_shards);

/// Reserved field names of a failure record: a shard that degrades a unit
/// terminally journals {key, __status__=degraded, __error__=<chain>,
/// __final__=<error class>} so surviving shards stop re-claiming it and the
/// coordinator replays the degradation instead of the unit.
inline constexpr const char* kStatusField = "__status__";
inline constexpr const char* kErrorField = "__error__";
inline constexpr const char* kFinalErrorField = "__final__";
inline constexpr const char* kDegradedStatus = "degraded";

/// Write `content` to `path` atomically and durably: temp file in the same
/// directory, fsynced, renamed over the target, parent directory fsynced
/// (a thin wrapper over util::DurableFile).  Readers never observe a
/// partial file and the replacement survives power loss.  Throws
/// util::IoError (a std::runtime_error) on I/O failure.
void atomic_write_file(const std::string& path, const std::string& content);

/// Append-only JSONL journal of completed campaign units.
class RunJournal {
public:
    /// Open (creating if absent) and load existing records, dropping any
    /// torn tail left by a crash.
    explicit RunJournal(std::string path);

    /// True when `key` has a committed record.
    [[nodiscard]] bool completed(const std::string& key) const;

    /// Recorded fields for `key`, or nullptr.  The pointer is only stable
    /// while no other thread records; concurrent readers should prefer
    /// find_copy().
    [[nodiscard]] const std::map<std::string, std::string>* find(const std::string& key) const;

    /// Copy of the recorded fields for `key` (safe under concurrent record()).
    [[nodiscard]] std::optional<std::map<std::string, std::string>> find_copy(
        const std::string& key) const;

    /// Commit a finished unit: append one line and flush it, all under the
    /// journal lock.  Re-recording a key replaces the in-memory entry (last
    /// record wins on reload too).
    void record(const std::string& key, std::map<std::string, std::string> fields);

    /// Rewrite the file atomically with one line per live record (drops torn
    /// lines and superseded duplicates).
    void compact();

    /// Merge foreign records (another shard's journal) into this one:
    /// in-memory only — pair with compact() to persist the union.  Every
    /// record overwrites any same-key entry (callers order inputs so the
    /// intended winner comes last).  Returns how many records were new or
    /// changed.
    std::size_t absorb(const std::vector<JournalRecord>& records);

    [[nodiscard]] std::size_t size() const;

    /// Records loaded from disk at open time.
    [[nodiscard]] std::size_t recovered_records() const noexcept { return recovered_records_; }

    /// Torn/malformed lines dropped at open time.
    [[nodiscard]] std::size_t discarded_lines() const noexcept { return discarded_lines_; }

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    mutable std::mutex mutex_;
    std::string path_;
    std::map<std::string, std::map<std::string, std::string>> records_;
    std::vector<std::string> order_;  ///< first-commit order, for compact()
    std::size_t recovered_records_ = 0;
    std::size_t discarded_lines_ = 0;
};

/// Bench-binary convenience wrapper: journaling is armed by FPTC_JOURNAL=
/// <path> (otherwise every unit executes).  Keys are namespaced by the
/// campaign name so several benches can share one journal file.
class CampaignJournal {
public:
    /// `shard_id` >= 0 puts the journal in shard-worker mode: appends go to
    /// shard_journal_path(FPTC_JOURNAL, shard_id) and the load additionally
    /// absorbs the base journal plus every sibling shard journal, so a
    /// worker replays units any member of the fleet already finished.
    explicit CampaignJournal(std::string campaign, int shard_id = -1);

    [[nodiscard]] bool enabled() const noexcept { return journal_.has_value(); }

    /// FPTC_JOURNAL as given ("" when journaling is disabled) — the family
    /// base that shard/lease/lock paths derive from.  In shard-worker mode
    /// this differs from the RunJournal's own (shard) path.
    [[nodiscard]] const std::string& base_path() const noexcept { return base_path_; }

    /// Campaign-namespaced key as stored on disk ("<campaign>|<key>") —
    /// lease records use the same namespace so several benches can share
    /// one journal family.
    [[nodiscard]] std::string full_key(const std::string& key) const
    {
        return campaign_ + "|" + key;
    }

    /// Coordinator merge: fold every shard journal into the base journal
    /// (merge_shard_journals) and reload the absorbed records into this
    /// instance so try_replay sees the fleet's results.  Returns the number
    /// of records newly visible.  No-op when journaling is disabled.
    std::size_t absorb_shard_journals(bool remove_shards);

    /// Replay the recorded fields for `key`, or execute `run` and commit
    /// what it returns.  Without a journal, always executes.
    std::map<std::string, std::string> run_or_replay(
        const std::string& key,
        const std::function<std::map<std::string, std::string>()>& run);

    /// Recorded fields for `key` if the unit already completed (counts as a
    /// replay); std::nullopt when absent or journaling is disabled.
    [[nodiscard]] std::optional<std::map<std::string, std::string>> try_replay(
        const std::string& key);

    /// Commit a finished unit (counts as an execution).  No-op append when
    /// journaling is disabled; the execution is still counted.
    void commit(const std::string& key, const std::map<std::string, std::string>& fields);

    [[nodiscard]] std::size_t replayed() const;
    [[nodiscard]] std::size_t executed() const;

    /// One-line progress report for campaign summaries ("" when disabled).
    [[nodiscard]] std::string summary() const;

private:
    mutable std::mutex mutex_;  ///< guards the replay/execute counters
    std::string campaign_;
    std::string base_path_;  ///< FPTC_JOURNAL ("" = disabled)
    std::optional<RunJournal> journal_;
    std::size_t replayed_ = 0;
    std::size_t executed_ = 0;
};

/// Full-precision double <-> journal field helpers (round-trip exact, so
/// resumed campaigns reproduce tables bit-for-bit).
[[nodiscard]] std::string field_from_double(double value);
[[nodiscard]] double field_double(const std::map<std::string, std::string>& fields,
                                  const std::string& name);
[[nodiscard]] long field_long(const std::map<std::string, std::string>& fields,
                              const std::string& name);

} // namespace fptc::util
