#include "fptc/util/telemetry.hpp"

#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/membudget.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace fptc::util {

namespace detail {
std::atomic<int> span_gate{0};
} // namespace detail

namespace {

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

std::uint64_t now_ns() noexcept
{
    // Steady clock relative to a process-wide epoch so trace timestamps start
    // near zero and stay monotone per thread (Chrome's viewer sorts on them).
    static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - epoch)
                                          .count());
}

// ---------------------------------------------------------------------------
// JSON helpers (local: the journal's escaper lives in journal.cpp)
// ---------------------------------------------------------------------------

void append_json_escaped(std::string& out, std::string_view text)
{
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

std::string format_double(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
}

} // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::observe(std::uint64_t value) noexcept
{
    const auto index = static_cast<std::size_t>(std::bit_width(value));
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket(std::size_t index) const
{
    if (index >= kBuckets) {
        throw std::out_of_range("Histogram::bucket: index " + std::to_string(index));
    }
    return buckets_[index].load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) noexcept
{
    if (index == 0) {
        return 0;
    }
    if (index >= 64) {
        return ~std::uint64_t{0};
    }
    return (std::uint64_t{1} << index) - 1;
}

double Histogram::quantile(double q) const noexcept
{
    const std::uint64_t n = count();
    if (n == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target observation (1-based), then walk the buckets.
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        cumulative += buckets_[b].load(std::memory_order_relaxed);
        if (cumulative >= rank) {
            if (b == 0) {
                return 0.0;
            }
            // Geometric midpoint of [2^(b-1), 2^b): right error model for a
            // log2 grid.
            const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
            const double hi = std::ldexp(1.0, static_cast<int>(b));
            return std::sqrt(lo * hi);
        }
    }
    return static_cast<double>(bucket_upper_bound(kBuckets - 1));
}

void Histogram::reset() noexcept
{
    for (auto& b : buckets_) {
        b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Impl {
    mutable std::mutex mutex;
    // Node-based maps: references handed out stay valid forever.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const
{
    // One registry per process; leaked intentionally so instruments outlive
    // every static destructor that might still record (atexit flush order).
    static Impl* instance = new Impl();
    return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name)
{
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    auto& slot = state.counters[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name)
{
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    auto& slot = state.gauges[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name)
{
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    auto& slot = state.histograms[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
    }
    return *slot;
}

std::string MetricsRegistry::prometheus_text() const
{
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    std::string out;
    for (const auto& [name, counter] : state.counters) {
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(counter->value()) + "\n";
    }
    for (const auto& [name, gauge] : state.gauges) {
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(gauge->value()) + "\n";
    }
    for (const auto& [name, histogram] : state.histograms) {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            const std::uint64_t in_bucket = histogram->bucket(b);
            if (in_bucket == 0) {
                continue;  // sparse exposition: log2 grids are mostly empty
            }
            cumulative += in_bucket;
            out += name + "_bucket{le=\"" +
                   std::to_string(Histogram::bucket_upper_bound(b)) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(histogram->count()) + "\n";
        out += name + "_sum " + std::to_string(histogram->sum()) + "\n";
        out += name + "_count " + std::to_string(histogram->count()) + "\n";
    }
    return out;
}

std::string MetricsRegistry::json_text() const
{
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, counter] : state.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + std::to_string(counter->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : state.gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + std::to_string(gauge->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : state.histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"count\": " + std::to_string(histogram->count()) +
               ", \"sum\": " + std::to_string(histogram->sum()) +
               ", \"mean\": " + format_double(histogram->mean()) +
               ", \"p50\": " + format_double(histogram->quantile(0.50)) +
               ", \"p95\": " + format_double(histogram->quantile(0.95)) + ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            const std::uint64_t in_bucket = histogram->bucket(b);
            if (in_bucket == 0) {
                continue;
            }
            out += first_bucket ? "" : ", ";
            first_bucket = false;
            out += "{\"le\": " + std::to_string(Histogram::bucket_upper_bound(b)) +
                   ", \"count\": " + std::to_string(in_bucket) + "}";
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::vector<std::string> MetricsRegistry::histogram_names(const std::string& prefix) const
{
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    std::vector<std::string> names;
    for (const auto& [name, histogram] : state.histograms) {
        if (name.rfind(prefix, 0) == 0) {
            names.push_back(name);
        }
    }
    return names;
}

void MetricsRegistry::reset_values_for_tests()
{
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    for (auto& [name, counter] : state.counters) {
        counter->reset();
    }
    for (auto& [name, gauge] : state.gauges) {
        gauge->set(0);
    }
    for (auto& [name, histogram] : state.histograms) {
        histogram->reset();
    }
}

MetricsRegistry& metrics()
{
    static MetricsRegistry registry;
    return registry;
}

// ---------------------------------------------------------------------------
// Tracing: per-thread rings
// ---------------------------------------------------------------------------

namespace {

/// Single-producer ring: only the owning thread pushes; exporters read after
/// the producers have joined (or between campaign phases), which the
/// executor's thread join orders happens-before.
class TraceRing {
public:
    TraceRing(std::uint32_t tid, std::size_t capacity)
        : tid_(tid), slots_(capacity > 0 ? capacity : 1)
    {
    }

    void push(const char* name, char phase, const char* args_body) noexcept
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        TraceEvent& slot = slots_[head % slots_.size()];
        slot.name = name;
        slot.phase = phase;
        slot.tid = tid_;
        slot.ts_ns = now_ns();
        std::size_t i = 0;
        if (args_body != nullptr) {
            for (; args_body[i] != '\0' && i < sizeof(slot.args) - 1; ++i) {
                slot.args[i] = args_body[i];
            }
        }
        slot.args[i] = '\0';
        head_.store(head + 1, std::memory_order_release);
    }

    void snapshot(std::vector<TraceEvent>& out) const
    {
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        const std::uint64_t size = slots_.size();
        const std::uint64_t start = head > size ? head - size : 0;
        for (std::uint64_t i = start; i < head; ++i) {
            out.push_back(slots_[i % size]);
        }
    }

    [[nodiscard]] std::uint64_t dropped() const noexcept
    {
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        return head > slots_.size() ? head - slots_.size() : 0;
    }

    void reset() noexcept { head_.store(0, std::memory_order_release); }

private:
    std::uint32_t tid_;
    std::vector<TraceEvent> slots_;
    std::atomic<std::uint64_t> head_{0};
};

struct TraceState {
    std::mutex mutex;  ///< guards ring registration and config, not pushes
    std::vector<std::unique_ptr<TraceRing>> rings;
    TelemetryConfig config;
    bool config_valid = false;
    bool atexit_armed = false;
};

TraceState& trace_state()
{
    // Leaked: worker threads may still push while static destructors run.
    static TraceState* state = new TraceState();
    return *state;
}

// Fast-path flags, written only under trace_state().mutex.  The inline
// span constructor additionally reads detail::span_gate (declared in the
// header), kept in sync with these at every write site.
std::atomic<int> g_init_state{0};  // 0 = uninitialized, 1 = initialized
std::atomic<bool> g_active{false};
std::atomic<bool> g_trace{false};

void publish_span_gate()
{
    const int gate = g_init_state.load(std::memory_order_relaxed) == 0
                         ? 0
                         : (g_active.load(std::memory_order_relaxed) ? 2 : 1);
    detail::span_gate.store(gate, std::memory_order_relaxed);
}

TelemetryConfig read_config_from_env()
{
    TelemetryConfig config;
    const auto validate_sink = [](const char* knob) {
        const char* raw = std::getenv(knob);
        if (raw == nullptr) {
            return std::string{};
        }
        const std::string value(raw);
        if (value.empty()) {
            throw EnvError(std::string(knob) +
                           " is set but empty: it must name a writable file path");
        }
        try {
            probe_appendable(value);
        } catch (const IoError& error) {
            throw EnvError(std::string(knob) + "='" + value +
                           "' does not name a writable file: " + error.what());
        }
        return value;
    };
    config.trace_path = validate_sink("FPTC_TRACE");
    config.metrics_path = validate_sink("FPTC_METRICS");
    if (const auto events = env_int("FPTC_TRACE_EVENTS")) {
        if (*events < 64) {
            throw EnvError("FPTC_TRACE_EVENTS=" + std::to_string(*events) +
                           " is too small: the per-thread ring needs at least 64 slots");
        }
        config.ring_capacity = static_cast<std::size_t>(*events);
    }
    config.profile = log_level() >= LogLevel::debug;
    return config;
}

void install_config_locked(TraceState& state, const TelemetryConfig& config)
{
    state.config = config;
    state.config_valid = true;
    g_trace.store(!config.trace_path.empty(), std::memory_order_relaxed);
    g_active.store(!config.trace_path.empty() || !config.metrics_path.empty() || config.profile,
                   std::memory_order_relaxed);
    g_init_state.store(1, std::memory_order_release);
    publish_span_gate();
    if (g_active.load(std::memory_order_relaxed) && !state.atexit_armed) {
        state.atexit_armed = true;
        std::atexit([] { telemetry_flush(); });
    }
}

/// Lazy non-throwing init for spans that fire before any executor exists.
/// A bad knob disables telemetry with one logged line; telemetry_init()
/// (called from the executor constructor) still throws the strict error.
void init_nothrow() noexcept
{
    TraceState& state = trace_state();
    const std::lock_guard<std::mutex> lock(state.mutex);
    if (g_init_state.load(std::memory_order_relaxed) != 0) {
        return;
    }
    try {
        install_config_locked(state, read_config_from_env());
    } catch (const std::exception& error) {
        state.config = TelemetryConfig{};
        state.config_valid = false;
        g_active.store(false, std::memory_order_relaxed);
        g_trace.store(false, std::memory_order_relaxed);
        g_init_state.store(1, std::memory_order_release);
        publish_span_gate();
        log_info(std::string("telemetry disabled: ") + error.what());
    }
}

thread_local TraceRing* t_ring = nullptr;

TraceRing& ring_for_this_thread()
{
    if (t_ring == nullptr) {
        TraceState& state = trace_state();
        const std::lock_guard<std::mutex> lock(state.mutex);
        const auto tid = static_cast<std::uint32_t>(state.rings.size() + 1);
        state.rings.push_back(std::make_unique<TraceRing>(tid, state.config.ring_capacity));
        t_ring = state.rings.back().get();
    }
    return *t_ring;
}

} // namespace

const TelemetryConfig& telemetry_init()
{
    TraceState& state = trace_state();
    const std::lock_guard<std::mutex> lock(state.mutex);
    if (g_init_state.load(std::memory_order_relaxed) == 0) {
        install_config_locked(state, read_config_from_env());  // may throw EnvError
    } else if (!state.config_valid) {
        // A span's nothrow init already swallowed the error; re-derive it so
        // the executor still refuses to start a campaign on a bad sink.
        install_config_locked(state, read_config_from_env());
    }
    return state.config;
}

bool telemetry_active() noexcept
{
    if (g_init_state.load(std::memory_order_acquire) == 0) {
        init_nothrow();
    }
    return g_active.load(std::memory_order_relaxed);
}

bool trace_enabled() noexcept
{
    if (g_init_state.load(std::memory_order_acquire) == 0) {
        init_nothrow();
    }
    return g_trace.load(std::memory_order_relaxed);
}

void trace_begin(const char* name, const char* args_body)
{
    if (!trace_enabled()) {
        return;
    }
    ring_for_this_thread().push(name, 'B', args_body);
}

void trace_end(const char* name)
{
    if (!trace_enabled()) {
        return;
    }
    ring_for_this_thread().push(name, 'E', "");
}

std::vector<TraceEvent> trace_snapshot()
{
    TraceState& state = trace_state();
    const std::lock_guard<std::mutex> lock(state.mutex);
    std::vector<TraceEvent> events;
    for (const auto& ring : state.rings) {
        ring->snapshot(events);
    }
    return events;
}

std::uint64_t trace_dropped()
{
    TraceState& state = trace_state();
    const std::lock_guard<std::mutex> lock(state.mutex);
    std::uint64_t dropped = 0;
    for (const auto& ring : state.rings) {
        dropped += ring->dropped();
    }
    return dropped;
}

std::string chrome_trace_json()
{
    const std::vector<TraceEvent> events = trace_snapshot();
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    const auto emit = [&](const TraceEvent& event) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "{\"name\": \"";
        append_json_escaped(out, event.name != nullptr ? event.name : "?");
        out += "\", \"cat\": \"fptc\", \"ph\": \"";
        out += event.phase;
        out += "\", \"ts\": " + format_double(static_cast<double>(event.ts_ns) / 1000.0) +
               ", \"pid\": 1, \"tid\": " + std::to_string(event.tid);
        if (event.phase == 'B' && event.args[0] != '\0') {
            out += ", \"args\": {";
            out += event.args;  // pre-rendered, pre-escaped JSON body
            out += "}";
        }
        out += "}";
    };
    // Per tid: drop orphan 'E' events (their 'B' was overwritten by ring
    // wrap-around) and close still-open 'B' spans with synthetic 'E's so the
    // exported stream always holds balanced pairs.  Events within one ring
    // are already chronological.
    std::map<std::uint32_t, std::vector<const TraceEvent*>> per_tid;
    for (const TraceEvent& event : events) {
        per_tid[event.tid].push_back(&event);
    }
    for (const auto& [tid, stream] : per_tid) {
        std::vector<const TraceEvent*> open;
        std::uint64_t last_ts = 0;
        for (const TraceEvent* event : stream) {
            last_ts = std::max(last_ts, event->ts_ns);
            if (event->phase == 'B') {
                open.push_back(event);
                emit(*event);
            } else if (!open.empty()) {
                open.pop_back();
                emit(*event);
            }
            // orphan 'E' at depth 0: skipped
        }
        while (!open.empty()) {
            TraceEvent closing = *open.back();
            open.pop_back();
            closing.phase = 'E';
            closing.ts_ns = last_ts;
            closing.args[0] = '\0';
            emit(closing);
        }
    }
    out += first ? "]}\n" : "\n]}\n";
    return out;
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

void TraceSpan::open(const char* name)
{
    name_ = name;
    if (!telemetry_active()) {
        return;
    }
    begin("");
}

void TraceSpan::open_with_args(const char* name,
                               std::initializer_list<std::pair<const char*, const char*>> args)
{
    name_ = name;
    if (!telemetry_active()) {
        return;
    }
    // Render `"k": "v", ...` into a bounded stack buffer; a pair that does
    // not fully fit is dropped (never truncated mid-token, so the JSON body
    // stays well-formed).
    char body[sizeof(TraceEvent{}.args)];
    std::size_t used = 0;
    for (const auto& [key, value] : args) {
        char pair[sizeof(body)];
        std::string escaped_value;
        append_json_escaped(escaped_value, value != nullptr ? value : "");
        const int wrote = std::snprintf(pair, sizeof(pair), "%s\"%s\": \"%s\"",
                                        used == 0 ? "" : ", ", key, escaped_value.c_str());
        if (wrote <= 0 || used + static_cast<std::size_t>(wrote) >= sizeof(body)) {
            continue;
        }
        std::memcpy(body + used, pair, static_cast<std::size_t>(wrote));
        used += static_cast<std::size_t>(wrote);
    }
    body[used] = '\0';
    begin(body);
}

void TraceSpan::begin(const char* args_body)
{
    active_ = true;
    alloc_start_ = mem_budget().reserved_total();
    if (trace_enabled()) {
        ring_for_this_thread().push(name_, 'B', args_body);
    }
    start_ns_ = now_ns();
}

void TraceSpan::close()
{
    const std::uint64_t duration_ns = now_ns() - start_ns_;
    const std::uint64_t alloc_bytes = mem_budget().reserved_total() - alloc_start_;
    if (trace_enabled()) {
        ring_for_this_thread().push(name_, 'E', "");
    }
    MetricsRegistry& registry = metrics();
    const std::string prefix = std::string("fptc_phase_") + name_;
    registry.histogram(prefix + "_duration_ns").observe(duration_ns);
    if (alloc_bytes > 0) {
        registry.counter(prefix + "_alloc_bytes_total").add(alloc_bytes);
    }
}

// ---------------------------------------------------------------------------
// Profiler + flush
// ---------------------------------------------------------------------------

void publish_membudget_metrics()
{
    MemBudget& budget = mem_budget();
    MetricsRegistry& registry = metrics();
    registry.gauge("fptc_membudget_in_use_bytes").set(static_cast<std::int64_t>(budget.in_use()));
    registry.gauge("fptc_membudget_peak_bytes")
        .set_max(static_cast<std::int64_t>(budget.peak_bytes()));
    registry.gauge("fptc_membudget_budget_bytes")
        .set(static_cast<std::int64_t>(budget.budget_bytes()));
}

void publish_fault_metrics()
{
    const FaultCounters counters = fault_injector().counters();
    MetricsRegistry& registry = metrics();
    const auto set = [&registry](const char* name, std::uint64_t value) {
        registry.gauge(name).set(static_cast<std::int64_t>(value));
    };
    set("fptc_fault_nan_losses", counters.nan_losses);
    set("fptc_fault_truncated_writes", counters.truncated_writes);
    set("fptc_fault_corrupted_csv_rows", counters.corrupted_csv_rows);
    set("fptc_fault_stalled_units", counters.stalled_units);
    set("fptc_fault_transient_units", counters.transient_units);
    set("fptc_fault_enospc_failures", counters.enospc_failures);
    set("fptc_fault_short_write_clamps", counters.short_write_clamps);
    set("fptc_fault_fsync_failures", counters.fsync_failures);
    set("fptc_fault_alloc_rejections", counters.alloc_rejections);
    set("fptc_fault_alloc_unit_failures", counters.alloc_unit_failures);
    set("fptc_fault_serve_backend_stalls", counters.serve_backend_stalls);
    set("fptc_fault_serve_mangled_packets", counters.serve_mangled_packets);
    set("fptc_fault_serve_bursts", counters.serve_bursts);
}

std::string profiler_report()
{
    MetricsRegistry& registry = metrics();
    const std::string prefix = "fptc_phase_";
    const std::string suffix = "_duration_ns";
    const std::vector<std::string> names = registry.histogram_names(prefix);
    std::ostringstream out;
    bool any = false;
    for (const std::string& name : names) {
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
            continue;
        }
        const Histogram& histogram = registry.histogram(name);
        if (histogram.count() == 0) {
            continue;
        }
        if (!any) {
            out << "phase profile (wall-clock per span, accounted alloc):\n";
            char header[128];
            std::snprintf(header, sizeof(header), "  %-14s %10s %12s %12s %12s %12s\n", "phase",
                          "count", "mean_ms", "p50_ms", "p95_ms", "alloc_mb");
            out << header;
            any = true;
        }
        const std::string phase =
            name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
        const std::uint64_t alloc =
            registry.counter(prefix + phase + "_alloc_bytes_total").value();
        char row[160];
        std::snprintf(row, sizeof(row), "  %-14s %10llu %12.3f %12.3f %12.3f %12.1f\n",
                      phase.c_str(), static_cast<unsigned long long>(histogram.count()),
                      histogram.mean() / 1e6, histogram.quantile(0.50) / 1e6,
                      histogram.quantile(0.95) / 1e6,
                      static_cast<double>(alloc) / (1024.0 * 1024.0));
        out << row;
    }
    return any ? out.str() : std::string{};
}

void telemetry_flush()
{
    if (!telemetry_active()) {
        return;
    }
    // Serialize whole flushes: run_all() flushes per campaign and the atexit
    // hook flushes once more at process end; last writer wins.
    static std::mutex flush_mutex;
    const std::lock_guard<std::mutex> lock(flush_mutex);

    TelemetryConfig config;
    {
        TraceState& state = trace_state();
        const std::lock_guard<std::mutex> state_lock(state.mutex);
        config = state.config;
    }

    publish_membudget_metrics();
    publish_fault_metrics();

    // Snapshot text first, then write: the durable writes below record their
    // own spans, which must not observe a held registry or ring lock.
    if (!config.trace_path.empty()) {
        const std::string trace = chrome_trace_json();
        try {
            DurableFile::write_file(config.trace_path, trace);
        } catch (const std::exception& error) {
            log_info(std::string("telemetry: trace export failed: ") + error.what());
        }
        const std::uint64_t dropped = trace_dropped();
        if (dropped > 0) {
            log_debug("telemetry: ring wrap-around dropped " + std::to_string(dropped) +
                      " oldest trace event(s); raise FPTC_TRACE_EVENTS to keep more");
        }
    }
    if (!config.metrics_path.empty()) {
        try {
            DurableFile::write_file(config.metrics_path, metrics().json_text());
            DurableFile::write_file(config.metrics_path + ".prom", metrics().prometheus_text());
        } catch (const std::exception& error) {
            log_info(std::string("telemetry: metrics export failed: ") + error.what());
        }
    }
    const std::string report = profiler_report();
    if (!report.empty()) {
        if (config.profile) {
            log_raw(report);
        }
        if (const char* artifacts = std::getenv("FPTC_ARTIFACTS_DIR");
            artifacts != nullptr && artifacts[0] != '\0') {
            try {
                DurableFile::write_file(std::string(artifacts) + "/BENCH_profile.txt", report);
            } catch (const std::exception& error) {
                log_info(std::string("telemetry: profile export failed: ") + error.what());
            }
        }
    }
}

void telemetry_configure_for_tests(const TelemetryConfig& config)
{
    TraceState& state = trace_state();
    const std::lock_guard<std::mutex> lock(state.mutex);
    install_config_locked(state, config);
    for (const auto& ring : state.rings) {
        ring->reset();
    }
}

void telemetry_reset_for_tests()
{
    TraceState& state = trace_state();
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.config = TelemetryConfig{};
    state.config_valid = false;
    g_active.store(false, std::memory_order_relaxed);
    g_trace.store(false, std::memory_order_relaxed);
    g_init_state.store(0, std::memory_order_release);
    publish_span_gate();
    for (const auto& ring : state.rings) {
        ring->reset();
    }
}

} // namespace fptc::util
