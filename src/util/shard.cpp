#include "fptc/util/shard.hpp"

#include "fptc/util/durable.hpp"
#include "fptc/util/log.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

namespace fptc::util {

namespace {

constexpr const char* kOpClaim = "claim";
constexpr const char* kOpBeat = "beat";
constexpr const char* kOpRelease = "release";

/// Compact the lease file once this many appends accumulated (per process;
/// approximate is fine — compaction only bounds file growth, never changes
/// the folded state).
constexpr std::size_t kCompactEvery = 256;

} // namespace

std::int64_t now_realtime_ms()
{
    timespec ts{};
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
           static_cast<std::int64_t>(ts.tv_nsec) / 1000000;
}

LeaseStore::LeaseStore(std::string base, int shard_id, double ttl_s)
    : lease_path_(shard_lease_path(base)),
      lock_path_(shard_lock_path(base)),
      shard_id_(shard_id),
      ttl_s_(ttl_s > 0.0 ? ttl_s : 30.0)
{
    // The whole lease protocol rests on flock actually excluding; probe it
    // once at startup so a filesystem with no-op locks (NFS without lockd)
    // fails loudly as an EnvError naming the filesystem instead of
    // silently double-claiming units.
    probe_flock(lock_path_);
}

std::map<std::string, LeaseInfo> LeaseStore::load_locked()
{
    std::map<std::string, LeaseInfo> leases;
    for (const auto& record : read_journal_records(lease_path_)) {
        const auto op = record.fields.find("op");
        const auto shard = record.fields.find("shard");
        const auto exp = record.fields.find("exp_ms");
        if (op == record.fields.end()) {
            continue;
        }
        if (op->second == kOpRelease) {
            leases.erase(record.key);
            continue;
        }
        if (shard == record.fields.end() || exp == record.fields.end()) {
            continue;
        }
        LeaseInfo info;
        info.shard = static_cast<int>(std::strtol(shard->second.c_str(), nullptr, 10));
        info.exp_ms = std::strtoll(exp->second.c_str(), nullptr, 10);
        leases[record.key] = info;
    }
    return leases;
}

void LeaseStore::append_locked(const std::string& key, const char* op, std::int64_t exp_ms)
{
    JournalRecord record;
    record.key = key;
    record.fields["op"] = op;
    record.fields["shard"] = std::to_string(shard_id_);
    record.fields["exp_ms"] = std::to_string(exp_ms);
    durable_append_line(lease_path_, to_json_line(record));
    if (++appends_since_compact_ >= kCompactEvery) {
        appends_since_compact_ = 0;
        // Rewrite with one claim line per live lease (released keys drop
        // out entirely).  Runs under the caller's flock, so the rewrite can
        // never race another shard's append.
        std::string content;
        for (const auto& [live_key, info] : load_locked()) {
            JournalRecord line;
            line.key = live_key;
            line.fields["op"] = kOpClaim;
            line.fields["shard"] = std::to_string(info.shard);
            line.fields["exp_ms"] = std::to_string(info.exp_ms);
            content += to_json_line(line);
            content += '\n';
        }
        atomic_write_file(lease_path_, content);
    }
}

bool LeaseStore::try_claim(const std::string& key)
{
    const FileLock lock(lock_path_);
    const auto leases = load_locked();
    const std::int64_t now = now_realtime_ms();
    const auto it = leases.find(key);
    if (it != leases.end() && it->second.shard != shard_id_) {
        if (it->second.exp_ms > now) {
            return false;  // unexpired foreign lease
        }
        ++stolen_;
        log_info("lease: shard " + std::to_string(shard_id_) + " stealing " + key +
                 " from dead shard " + std::to_string(it->second.shard));
    }
    append_locked(key, kOpClaim, now + static_cast<std::int64_t>(ttl_s_ * 1000.0));
    return true;
}

void LeaseStore::heartbeat(const std::vector<std::string>& keys)
{
    if (keys.empty()) {
        return;
    }
    const FileLock lock(lock_path_);
    const std::int64_t exp = now_realtime_ms() + static_cast<std::int64_t>(ttl_s_ * 1000.0);
    for (const auto& key : keys) {
        append_locked(key, kOpBeat, exp);
    }
}

void LeaseStore::release(const std::string& key)
{
    const FileLock lock(lock_path_);
    append_locked(key, kOpRelease, 0);
}

std::map<std::string, LeaseInfo> LeaseStore::snapshot()
{
    const FileLock lock(lock_path_);
    auto leases = load_locked();
    const std::int64_t now = now_realtime_ms();
    for (auto it = leases.begin(); it != leases.end();) {
        it = it->second.exp_ms <= now ? leases.erase(it) : std::next(it);
    }
    return leases;
}

ShardJournalSet::ShardJournalSet(std::string base, int own_shard)
    : base_(std::move(base)),
      own_path_(own_shard >= 0 ? shard_journal_path(base_, own_shard) : std::string())
{
}

bool ShardJournalSet::maybe_reload(std::int64_t min_interval_ms)
{
    const std::int64_t now = now_realtime_ms();
    if (last_reload_ms_ != 0 && min_interval_ms > 0 &&
        now - last_reload_ms_ < min_interval_ms) {
        return false;
    }
    last_reload_ms_ = now;
    records_.clear();
    std::vector<std::string> sources{base_};
    for (const auto& sibling : list_shard_journals(base_)) {
        if (sibling != own_path_) {
            sources.push_back(sibling);
        }
    }
    for (const auto& source : sources) {
        for (auto& record : read_journal_records(source)) {
            records_[record.key] = std::move(record.fields);
        }
    }
    return true;
}

std::optional<std::map<std::string, std::string>> ShardJournalSet::find(
    const std::string& key) const
{
    const auto it = records_.find(key);
    if (it == records_.end()) {
        return std::nullopt;
    }
    return it->second;
}

namespace {

/// This process's argv, recovered from /proc/self/cmdline (NUL-separated).
[[nodiscard]] std::vector<std::string> self_cmdline()
{
    std::ifstream in("/proc/self/cmdline", std::ios::binary);
    std::string raw((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    std::vector<std::string> argv;
    std::size_t start = 0;
    while (start < raw.size()) {
        const auto nul = raw.find('\0', start);
        const auto end = nul == std::string::npos ? raw.size() : nul;
        argv.push_back(raw.substr(start, end - start));
        start = end + 1;
    }
    return argv;
}

} // namespace

int spawn_shard_worker(const std::vector<EnvVar>& env, const std::string& stdout_path)
{
    const auto argv_strings = self_cmdline();
    if (argv_strings.empty()) {
        throw IoError("spawn_shard_worker: cannot read /proc/self/cmdline",
                      /*transient=*/false);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        const int err = errno;
        throw IoError("spawn_shard_worker: fork failed: " + std::string(std::strerror(err)),
                      err == EAGAIN);
    }
    if (pid > 0) {
        return static_cast<int>(pid);
    }
    // Child: only async-signal-safe-ish setup until exec.  The coordinator
    // forks before starting any worker thread, so heap use here is safe.
    for (const auto& var : env) {
        if (var.unset) {
            ::unsetenv(var.name.c_str());
        } else {
            ::setenv(var.name.c_str(), var.value.c_str(), 1);
        }
    }
    if (!stdout_path.empty()) {
        const int fd =
            ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::close(fd);
        }
    }
    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (const auto& arg : argv_strings) {
        argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv("/proc/self/exe", argv.data());
    // exec failed: nothing sane to do in the child but die loudly.
    const char* note = "[fptc] spawn_shard_worker: execv(/proc/self/exe) failed\n";
    [[maybe_unused]] const auto n = ::write(STDERR_FILENO, note, std::strlen(note));
    ::_exit(127);
}

} // namespace fptc::util
