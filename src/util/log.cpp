#include "fptc/util/log.hpp"

#include "fptc/util/env.hpp"

#include <iostream>

namespace fptc::util {

LogLevel log_level()
{
    static const LogLevel level = [] {
        const auto v = env_int("FPTC_LOG").value_or(1);
        if (v <= 0) {
            return LogLevel::quiet;
        }
        if (v == 1) {
            return LogLevel::info;
        }
        return LogLevel::debug;
    }();
    return level;
}

void log_info(const std::string& message)
{
    if (log_level() >= LogLevel::info) {
        std::cerr << "[fptc] " << message << '\n';
    }
}

void log_debug(const std::string& message)
{
    if (log_level() >= LogLevel::debug) {
        std::cerr << "[fptc:debug] " << message << '\n';
    }
}

} // namespace fptc::util
