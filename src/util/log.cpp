#include "fptc/util/log.hpp"

#include "fptc/util/env.hpp"

#include <cstdio>
#include <mutex>

namespace fptc::util {

namespace {

// One mutex for every stderr emission.  FPTC_JOBS worker threads log
// concurrently (executor retries, membudget lines, watchdog kills); a bare
// `std::cerr << a << b << c` interleaves at operator<< granularity and
// produces torn lines exactly when things go wrong and the log matters
// most.  Each message is composed into a single buffer first, then written
// with one fwrite under the lock.
std::mutex& log_mutex()
{
    static std::mutex* mutex = new std::mutex();  // leaked: usable in atexit hooks
    return *mutex;
}

void write_line(const char* prefix, const std::string& message)
{
    std::string line;
    line.reserve(message.size() + 16);
    line += prefix;
    line += message;
    line += '\n';
    const std::lock_guard<std::mutex> lock(log_mutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

LogLevel log_level()
{
    static const LogLevel level = [] {
        const auto v = env_int("FPTC_LOG").value_or(1);
        if (v <= 0) {
            return LogLevel::quiet;
        }
        if (v == 1) {
            return LogLevel::info;
        }
        return LogLevel::debug;
    }();
    return level;
}

void log_info(const std::string& message)
{
    if (log_level() >= LogLevel::info) {
        write_line("[fptc] ", message);
    }
}

void log_debug(const std::string& message)
{
    if (log_level() >= LogLevel::debug) {
        write_line("[fptc:debug] ", message);
    }
}

void log_raw(const std::string& text)
{
    const std::lock_guard<std::mutex> lock(log_mutex());
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
}

} // namespace fptc::util
