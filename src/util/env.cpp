#include "fptc/util/env.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace fptc::util {

namespace {

[[noreturn]] void bad_knob(const std::string& name, const char* raw, const char* why)
{
    throw EnvError(name + "='" + raw + "': " + why);
}

} // namespace

std::optional<std::int64_t> env_int(const std::string& name)
{
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0') {
        return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(raw, &end, 10);
    if (end == raw || *end != '\0') {
        bad_knob(name, raw, "not an integer");
    }
    if (errno == ERANGE) {
        bad_knob(name, raw, "overflows 64-bit integer");
    }
    if (value < 0) {
        bad_knob(name, raw, "must be non-negative");
    }
    return static_cast<std::int64_t>(value);
}

std::optional<double> env_double(const std::string& name)
{
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0') {
        return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(raw, &end);
    if (end == raw || *end != '\0') {
        bad_knob(name, raw, "not a number");
    }
    if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
        bad_knob(name, raw, "overflows double");
    }
    if (!std::isfinite(value)) {
        bad_knob(name, raw, "must be finite");
    }
    if (value < 0.0) {
        bad_knob(name, raw, "must be non-negative");
    }
    return value;
}

bool full_scale()
{
    return env_int("FPTC_FULL").value_or(0) != 0;
}

CampaignScale resolve_scale(int paper_splits, int paper_seeds, int default_splits, int default_seeds,
                            int max_epochs)
{
    CampaignScale scale{};
    scale.full = full_scale();
    scale.splits = scale.full ? paper_splits : default_splits;
    scale.seeds = scale.full ? paper_seeds : default_seeds;
    // Reduced-scale runs also cap the epoch budget; FPTC_EPOCHS overrides.
    scale.max_epochs = scale.full ? max_epochs : std::min(max_epochs, 12);
    if (const auto v = env_int("FPTC_SPLITS")) {
        scale.splits = static_cast<int>(*v);
    }
    if (const auto v = env_int("FPTC_SEEDS")) {
        scale.seeds = static_cast<int>(*v);
    }
    if (const auto v = env_int("FPTC_EPOCHS")) {
        scale.max_epochs = static_cast<int>(*v);
    }
    if (scale.splits < 1) {
        scale.splits = 1;
    }
    if (scale.seeds < 1) {
        scale.seeds = 1;
    }
    if (scale.max_epochs < 1) {
        scale.max_epochs = 1;
    }
    return scale;
}

} // namespace fptc::util
