#include "fptc/util/telemetry_merge.hpp"

#include "fptc/util/journal.hpp"  // atomic_write_file

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace fptc::util {

namespace {

/// One metric family accumulated across inputs.  Everything the registry
/// exposes is integral (counters, gauges, histogram buckets/sum/count), so
/// the merge works in exact integer arithmetic.
struct Family {
    std::string type;  ///< "counter" | "gauge" | "histogram"
    long long scalar = 0;               ///< counter sum or gauge max
    bool has_scalar = false;
    std::map<unsigned long long, unsigned long long> bucket_increments;  ///< le -> count
    unsigned long long inf_count = 0;   ///< +Inf cumulative (== _count)
    unsigned long long sum = 0;
    unsigned long long count = 0;
};

[[nodiscard]] bool read_file_lines(const std::string& path, std::vector<std::string>& lines)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        lines.push_back(line);
    }
    return true;
}

/// "name_bucket{le=\"8\"} 3" -> series "name_bucket{le=\"8\"}", value 3.
[[nodiscard]] bool split_sample(const std::string& line, std::string& series, long long& value)
{
    const auto space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
        return false;
    }
    char* end = nullptr;
    value = std::strtoll(line.c_str() + space + 1, &end, 10);
    if (end != line.c_str() + line.size()) {
        return false;
    }
    series = line.substr(0, space);
    return true;
}

} // namespace

std::size_t merge_prometheus_files(const std::vector<std::string>& input_paths,
                                   const std::string& output_path)
{
    // family name (insertion-ordered via the vector) -> accumulated state
    std::map<std::string, Family> families;
    std::vector<std::string> family_order;
    std::size_t contributing = 0;

    for (const auto& path : input_paths) {
        std::vector<std::string> lines;
        if (!read_file_lines(path, lines) || lines.empty()) {
            continue;
        }
        ++contributing;
        std::string current;  ///< family of the lines being read
        // Per-input de-cumulation state for the current histogram family.
        unsigned long long previous_cumulative = 0;
        for (const auto& line : lines) {
            if (line.rfind("# TYPE ", 0) == 0) {
                std::istringstream fields(line.substr(7));
                std::string name;
                std::string type;
                fields >> name >> type;
                if (name.empty()) {
                    continue;
                }
                auto [it, inserted] = families.try_emplace(name);
                if (inserted) {
                    it->second.type = type;
                    family_order.push_back(name);
                }
                current = name;
                previous_cumulative = 0;
                continue;
            }
            std::string series;
            long long value = 0;
            if (!split_sample(line, series, value) || current.empty()) {
                continue;
            }
            Family& family = families[current];
            if (family.type == "counter") {
                family.scalar += value;
                family.has_scalar = true;
            } else if (family.type == "gauge") {
                family.scalar = family.has_scalar ? std::max(family.scalar, value) : value;
                family.has_scalar = true;
            } else if (family.type == "histogram") {
                const std::string bucket_prefix = current + "_bucket{le=\"";
                if (series.rfind(bucket_prefix, 0) == 0) {
                    const std::string le_text =
                        series.substr(bucket_prefix.size(),
                                      series.size() - bucket_prefix.size() - 2);  // strip "}
                    const auto cumulative = static_cast<unsigned long long>(value);
                    if (le_text == "+Inf") {
                        family.inf_count += cumulative;
                    } else {
                        // De-cumulate within this input: per-le increments
                        // sum correctly across shards even when the sparse
                        // bucket sets differ; the writer re-cumulates.
                        const unsigned long long le =
                            std::strtoull(le_text.c_str(), nullptr, 10);
                        family.bucket_increments[le] += cumulative - previous_cumulative;
                        previous_cumulative = cumulative;
                    }
                } else if (series == current + "_sum") {
                    family.sum += static_cast<unsigned long long>(value);
                } else if (series == current + "_count") {
                    family.count += static_cast<unsigned long long>(value);
                }
            }
        }
    }

    std::string out;
    for (const auto& name : family_order) {
        const Family& family = families.at(name);
        out += "# TYPE " + name + " " + family.type + "\n";
        if (family.type == "histogram") {
            unsigned long long cumulative = 0;
            for (const auto& [le, increment] : family.bucket_increments) {
                cumulative += increment;
                out += name + "_bucket{le=\"" + std::to_string(le) + "\"} " +
                       std::to_string(cumulative) + "\n";
            }
            out += name + "_bucket{le=\"+Inf\"} " + std::to_string(family.inf_count) + "\n";
            out += name + "_sum " + std::to_string(family.sum) + "\n";
            out += name + "_count " + std::to_string(family.count) + "\n";
        } else {
            out += name + " " + std::to_string(family.scalar) + "\n";
        }
    }
    atomic_write_file(output_path, out);
    return contributing;
}

std::size_t merge_trace_files(const std::vector<std::string>& input_paths,
                              const std::string& output_path)
{
    std::vector<std::string> events;
    std::size_t contributing = 0;
    for (std::size_t i = 0; i < input_paths.size(); ++i) {
        std::vector<std::string> lines;
        if (!read_file_lines(input_paths[i], lines)) {
            continue;
        }
        bool contributed = false;
        const std::string pid_field = "\"pid\": " + std::to_string(i + 1);
        for (auto& line : lines) {
            // Event lines are the ones chrome_trace_json() emits between the
            // traceEvents brackets: one JSON object each, comma-terminated
            // except the last.
            if (line.rfind("{\"name\":", 0) != 0) {
                continue;
            }
            if (!line.empty() && line.back() == ',') {
                line.pop_back();
            }
            const auto pid_at = line.find("\"pid\": 1");
            if (pid_at != std::string::npos) {
                line.replace(pid_at, 8, pid_field);
            }
            events.push_back(std::move(line));
            contributed = true;
        }
        if (contributed) {
            ++contributing;
        }
    }
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += events[i];
    }
    out += "\n]}\n";
    atomic_write_file(output_path, out);
    return contributing;
}

} // namespace fptc::util
