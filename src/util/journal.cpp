#include "fptc/util/journal.hpp"

#include "fptc/util/durable.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include <dirent.h>
#include <unistd.h>

namespace fptc::util {

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string to_json_line(const JournalRecord& record)
{
    std::string out = "{\"key\":\"" + json_escape(record.key) + "\"";
    for (const auto& [name, value] : record.fields) {
        out += ",\"" + json_escape(name) + "\":\"" + json_escape(value) + "\"";
    }
    out += "}";
    return out;
}

namespace {

/// Scan a JSON string literal starting at `pos` (which must point at the
/// opening quote).  Returns the decoded value and advances `pos` past the
/// closing quote; std::nullopt on malformed input.
[[nodiscard]] std::optional<std::string> scan_string(const std::string& line, std::size_t& pos)
{
    if (pos >= line.size() || line[pos] != '"') {
        return std::nullopt;
    }
    ++pos;
    std::string out;
    while (pos < line.size()) {
        const char c = line[pos];
        if (c == '"') {
            ++pos;
            return out;
        }
        if (c == '\\') {
            if (pos + 1 >= line.size()) {
                return std::nullopt;
            }
            const char esc = line[pos + 1];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos + 5 >= line.size()) {
                    return std::nullopt;
                }
                const std::string hex = line.substr(pos + 2, 4);
                char* end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4 || code < 0 || code > 0x7f) {
                    return std::nullopt; // journal only emits \u00xx escapes
                }
                out += static_cast<char>(code);
                pos += 4;
                break;
            }
            default: return std::nullopt;
            }
            pos += 2;
        } else {
            out += c;
            ++pos;
        }
    }
    return std::nullopt; // unterminated string (torn line)
}

void skip_spaces(const std::string& line, std::size_t& pos)
{
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
        ++pos;
    }
}

} // namespace

std::optional<JournalRecord> parse_json_line(const std::string& line)
{
    std::size_t pos = 0;
    skip_spaces(line, pos);
    if (pos >= line.size() || line[pos] != '{') {
        return std::nullopt;
    }
    ++pos;
    JournalRecord record;
    bool have_key = false;
    bool first = true;
    while (true) {
        skip_spaces(line, pos);
        if (pos < line.size() && line[pos] == '}') {
            ++pos;
            break;
        }
        if (!first) {
            if (pos >= line.size() || line[pos] != ',') {
                return std::nullopt;
            }
            ++pos;
            skip_spaces(line, pos);
        }
        first = false;
        auto name = scan_string(line, pos);
        if (!name) {
            return std::nullopt;
        }
        skip_spaces(line, pos);
        if (pos >= line.size() || line[pos] != ':') {
            return std::nullopt;
        }
        ++pos;
        skip_spaces(line, pos);
        auto value = scan_string(line, pos);
        if (!value) {
            return std::nullopt;
        }
        if (*name == "key") {
            record.key = *value;
            have_key = true;
        } else {
            record.fields[*name] = *value;
        }
    }
    skip_spaces(line, pos);
    if (!have_key || record.key.empty() || pos != line.size()) {
        return std::nullopt;
    }
    return record;
}

void atomic_write_file(const std::string& path, const std::string& content)
{
    // Full durable transaction: temp + fsync + rename + parent-dir fsync
    // (see util/durable.hpp for the crash-window guarantees).
    DurableFile::write_file(path, content);
}

std::vector<JournalRecord> read_journal_records(const std::string& path, std::size_t* discarded)
{
    std::vector<JournalRecord> records;
    std::map<std::string, std::size_t> index;  // key -> slot, last record wins
    std::ifstream in(path);
    if (!in) {
        return records;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        auto record = parse_json_line(line);
        if (!record) {
            if (discarded != nullptr) {
                ++*discarded;
            }
            continue;
        }
        const auto it = index.find(record->key);
        if (it == index.end()) {
            index[record->key] = records.size();
            records.push_back(*std::move(record));
        } else {
            records[it->second] = *std::move(record);
        }
    }
    return records;
}

std::string shard_journal_path(const std::string& base, int shard_id)
{
    return base + ".shard" + std::to_string(shard_id);
}

std::string shard_lease_path(const std::string& base)
{
    return base + ".leases";
}

std::string shard_lock_path(const std::string& base)
{
    return base + ".lock";
}

std::vector<std::string> list_shard_journals(const std::string& base)
{
    const std::string dir = parent_dir_of(base);
    const auto slash = base.find_last_of('/');
    const std::string prefix =
        (slash == std::string::npos ? base : base.substr(slash + 1)) + ".shard";
    // shard id -> path, so the returned order is by shard id regardless of
    // readdir order (merge precedence must be deterministic).
    std::map<long, std::string> found;
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) {
        return {};
    }
    while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
            continue;
        }
        const std::string tail = name.substr(prefix.size());
        if (tail.find_first_not_of("0123456789") != std::string::npos) {
            continue;  // companion files (.shardN.out, .shardN.trace, ...)
        }
        found[std::strtol(tail.c_str(), nullptr, 10)] = dir + "/" + name;
    }
    ::closedir(handle);
    std::vector<std::string> paths;
    paths.reserve(found.size());
    for (const auto& [id, path] : found) {
        paths.push_back(path);
    }
    return paths;
}

std::size_t merge_shard_journals(const std::string& base, bool remove_shards)
{
    const FileLock lock(shard_lock_path(base));
    // Base first, shards in id order: any same-key collision resolves to
    // the highest shard id, and shard results always supersede a stale base
    // entry.  Unit results are deterministic per key, so precedence only
    // matters for exact byte ties anyway.
    std::map<std::string, std::size_t> index;
    std::vector<JournalRecord> merged;
    const auto shard_paths = list_shard_journals(base);
    std::vector<std::string> sources{base};
    sources.insert(sources.end(), shard_paths.begin(), shard_paths.end());
    for (const auto& source : sources) {
        for (auto& record : read_journal_records(source)) {
            const auto it = index.find(record.key);
            if (it == index.end()) {
                index[record.key] = merged.size();
                merged.push_back(std::move(record));
            } else {
                merged[it->second] = std::move(record);
            }
        }
    }
    std::string content;
    for (const auto& record : merged) {
        content += to_json_line(record);
        content += '\n';
    }
    atomic_write_file(base, content);
    if (remove_shards) {
        for (const auto& path : shard_paths) {
            ::unlink(path.c_str());
        }
        ::unlink(shard_lease_path(base).c_str());
        // The flock fd stays valid past the unlink; only safe because every
        // worker has exited, so no late claimer can recreate-and-lock a
        // second lock file concurrently.
        ::unlink(shard_lock_path(base).c_str());
    }
    return merged.size();
}

RunJournal::RunJournal(std::string path) : path_(std::move(path))
{
    // Validate writability up front: a bad path must fail here, before the
    // campaign sinks CPU time into a unit whose record() would then throw.
    probe_appendable(path_);
    std::ifstream in(path_);
    if (!in) {
        return; // fresh journal (the append probe just created it)
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        if (auto record = parse_json_line(line)) {
            if (records_.find(record->key) == records_.end()) {
                order_.push_back(record->key);
            }
            records_[record->key] = std::move(record->fields);
            ++recovered_records_;
        } else {
            ++discarded_lines_; // torn tail from a crash mid-append
        }
    }
    if (discarded_lines_ > 0) {
        log_info("journal: dropped " + std::to_string(discarded_lines_) +
                 " torn line(s) from " + path_);
    }
}

bool RunJournal::completed(const std::string& key) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return records_.find(key) != records_.end();
}

const std::map<std::string, std::string>* RunJournal::find(const std::string& key) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
}

std::optional<std::map<std::string, std::string>> RunJournal::find_copy(
    const std::string& key) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = records_.find(key);
    if (it == records_.end()) {
        return std::nullopt;
    }
    return it->second;
}

void RunJournal::record(const std::string& key, std::map<std::string, std::string> fields)
{
    // One durable append (write + fsync) per record, all under the lock:
    // concurrent workers can never interleave bytes within a line, and a
    // record() that returned survives power loss.  A failed append throws
    // *before* the in-memory maps change, so a retried unit re-commits the
    // same line — and even a duplicate line is safe (last record wins on
    // reload).
    const std::lock_guard<std::mutex> lock(mutex_);
    FPTC_TRACE_SPAN("journal_commit");
    durable_append_line(path_, to_json_line(JournalRecord{key, fields}));
    if (records_.find(key) == records_.end()) {
        order_.push_back(key);
    }
    records_[key] = std::move(fields);
}

void RunJournal::compact()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    FPTC_TRACE_SPAN("journal_compact");
    std::string content;
    for (const auto& key : order_) {
        content += to_json_line(JournalRecord{key, records_.at(key)});
        content += '\n';
    }
    atomic_write_file(path_, content);
}

std::size_t RunJournal::absorb(const std::vector<JournalRecord>& records)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t changed = 0;
    for (const auto& record : records) {
        const auto it = records_.find(record.key);
        if (it == records_.end()) {
            order_.push_back(record.key);
            records_[record.key] = record.fields;
            ++changed;
        } else if (it->second != record.fields) {
            it->second = record.fields;
            ++changed;
        }
    }
    return changed;
}

std::size_t RunJournal::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return order_.size();
}

CampaignJournal::CampaignJournal(std::string campaign, int shard_id)
    : campaign_(std::move(campaign))
{
    const char* path = std::getenv("FPTC_JOURNAL");
    if (path == nullptr || *path == '\0') {
        return;
    }
    base_path_ = path;
    if (shard_id < 0) {
        journal_.emplace(base_path_);
    } else {
        // Shard worker: the hot append path is private (<base>.shard<i>, no
        // cross-process contention), but the initial view must be the whole
        // family — base journal plus every sibling — so a restarted fleet
        // replays units any member already finished.
        journal_.emplace(shard_journal_path(base_path_, shard_id));
        const std::string own_path = journal_->path();
        std::size_t absorbed = journal_->absorb(read_journal_records(base_path_));
        for (const auto& sibling : list_shard_journals(base_path_)) {
            if (sibling != own_path) {
                absorbed += journal_->absorb(read_journal_records(sibling));
            }
        }
        if (absorbed > 0) {
            log_debug("journal: shard " + std::to_string(shard_id) + " absorbed " +
                      std::to_string(absorbed) + " record(s) from the journal family");
        }
    }
    if (journal_->size() > 0) {
        log_info("journal: resuming from " + journal_->path() + " (" +
                 std::to_string(journal_->size()) + " completed unit(s) on record)");
    }
}

std::size_t CampaignJournal::absorb_shard_journals(bool remove_shards)
{
    if (!journal_) {
        return 0;
    }
    const std::size_t before = journal_->size();
    merge_shard_journals(base_path_, remove_shards);
    const std::size_t absorbed = journal_->absorb(read_journal_records(base_path_));
    log_info("journal: merged shard journals into " + base_path_ + " (" +
             std::to_string(absorbed) + " new record(s), " +
             std::to_string(before) + " already known)");
    return absorbed;
}

std::map<std::string, std::string> CampaignJournal::run_or_replay(
    const std::string& key, const std::function<std::map<std::string, std::string>()>& run)
{
    if (auto fields = try_replay(key)) {
        return *std::move(fields);
    }
    auto fields = run();
    commit(key, fields);
    return fields;
}

std::optional<std::map<std::string, std::string>> CampaignJournal::try_replay(
    const std::string& key)
{
    if (!journal_) {
        return std::nullopt;
    }
    const std::string full_key = campaign_ + "|" + key;
    auto fields = journal_->find_copy(full_key);
    if (!fields) {
        return std::nullopt;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++replayed_;
    }
    log_debug("journal: replaying " + full_key);
    return fields;
}

void CampaignJournal::commit(const std::string& key,
                             const std::map<std::string, std::string>& fields)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++executed_;
    }
    if (journal_) {
        journal_->record(campaign_ + "|" + key, fields);
    }
}

std::size_t CampaignJournal::replayed() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return replayed_;
}

std::size_t CampaignJournal::executed() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

std::string CampaignJournal::summary() const
{
    if (!journal_) {
        return {};
    }
    return "journal " + journal_->path() + ": " + std::to_string(replayed()) + " replayed, " +
           std::to_string(executed()) + " executed";
}

std::string field_from_double(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

double field_double(const std::map<std::string, std::string>& fields, const std::string& name)
{
    const auto it = fields.find(name);
    if (it == fields.end()) {
        throw std::runtime_error("journal record is missing field '" + name + "'");
    }
    return std::strtod(it->second.c_str(), nullptr);
}

long field_long(const std::map<std::string, std::string>& fields, const std::string& name)
{
    const auto it = fields.find(name);
    if (it == fields.end()) {
        throw std::runtime_error("journal record is missing field '" + name + "'");
    }
    return std::strtol(it->second.c_str(), nullptr, 10);
}

} // namespace fptc::util
