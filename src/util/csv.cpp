#include "fptc/util/csv.hpp"

#include "fptc/util/journal.hpp"

#include <sstream>
#include <stdexcept>

namespace fptc::util {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string csv_escape(const std::string& field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
        return field;
    }
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') {
            out += '"';
        }
        out += c;
    }
    out += '"';
    return out;
}

std::string CsvWriter::to_string() const
{
    std::ostringstream out;
    for (std::size_t c = 0; c < header_.size(); ++c) {
        if (c > 0) {
            out << ',';
        }
        out << csv_escape(header_[c]);
    }
    out << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) {
                out << ',';
            }
            out << csv_escape(row[c]);
        }
        out << '\n';
    }
    if (!out) {
        throw std::runtime_error("CsvWriter::to_string: render stream failure");
    }
    return out.str();
}

void CsvWriter::write_file(const std::string& path) const
{
    // Durable temp-file + fsync + rename so a killed (or power-cut)
    // campaign never leaves a partial or empty artifact behind.
    atomic_write_file(path, to_string());
}

} // namespace fptc::util
