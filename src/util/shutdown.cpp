#include "fptc/util/shutdown.hpp"

#include <atomic>
#include <csignal>
#include <cstring>

#include <unistd.h>

namespace fptc::util {

namespace {

std::atomic<int> g_signal{0};
std::atomic<int> g_signal_count{0};

/// Async-signal-safe by construction: two atomic stores and one write(2).
/// Everything stateful (cancel propagation, journal record, telemetry
/// flush) happens later on a normal thread that polls shutdown_signal().
extern "C" void handle_shutdown_signal(int signum)
{
    const int seen = g_signal_count.fetch_add(1, std::memory_order_acq_rel);
    if (seen >= 1) {
        // Second signal: the operator insists.  Skip flushes and die now
        // (_exit, like a power cut, runs no destructors).
        ::_exit(128 + signum);
    }
    int expected = 0;
    g_signal.compare_exchange_strong(expected, signum, std::memory_order_acq_rel);
    const char* note = signum == SIGINT
                           ? "[fptc] SIGINT: finishing in-flight batches, flushing telemetry "
                             "(repeat to force-quit)\n"
                           : "[fptc] SIGTERM: finishing in-flight batches, flushing telemetry "
                             "(repeat to force-quit)\n";
    [[maybe_unused]] const auto n = ::write(STDERR_FILENO, note, ::strlen(note));
}

} // namespace

void install_shutdown_handlers()
{
    static const bool installed = [] {
        struct sigaction action;
        std::memset(&action, 0, sizeof action);
        action.sa_handler = handle_shutdown_signal;
        ::sigemptyset(&action.sa_mask);
        // No SA_RESTART: blocking syscalls (waitpid, sleeps) should wake so
        // the polling loops notice the flag promptly.
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);
        return true;
    }();
    (void)installed;
}

int shutdown_signal() noexcept
{
    return g_signal.load(std::memory_order_acquire);
}

bool shutdown_requested() noexcept
{
    return shutdown_signal() != 0;
}

int shutdown_exit_code(int signum) noexcept
{
    return 128 + signum;
}

void reset_shutdown_for_tests() noexcept
{
    g_signal.store(0, std::memory_order_release);
    g_signal_count.store(0, std::memory_order_release);
}

} // namespace fptc::util
