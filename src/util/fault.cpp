#include "fptc/util/fault.hpp"

#include "fptc/util/env.hpp"

#include <cstdlib>
#include <sstream>

namespace fptc::util {

FaultInjector::FaultInjector(const FaultPlan& plan)
{
    configure(plan);
}

void FaultInjector::configure(const FaultPlan& plan)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
    rng_ = Rng(mix_seed(plan.seed, 0xFA17));
    counters_ = FaultCounters{};
    training_steps_ = 0;
    unit_executions_stall_ = 0;
    unit_executions_transient_ = 0;
    durable_bytes_ = 0;
    durable_writes_ = 0;
    shard_unit_completions_ = 0;
    serve_backend_calls_ = 0;
    serve_stream_events_ = 0;
    serve_batches_ = 0;
    serve_snapshot_commits_ = 0;
    const std::uint64_t threshold =
        plan.alloc_fail_after_mb > 0
            ? static_cast<std::uint64_t>(plan.alloc_fail_after_mb) * 1024 * 1024
            : 0;
    alloc_fail_threshold_bytes_.store(threshold, std::memory_order_relaxed);
    // Bumping the epoch lazily invalidates every thread's byte scope.
    alloc_scope_epoch_.fetch_add(1, std::memory_order_relaxed);
    alloc_rejections_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::enabled() const noexcept
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return plan_.nan_loss_every > 0 || plan_.truncate_writes > 0 ||
           plan_.csv_row_percent > 0.0 || plan_.stall_units > 0 || plan_.transient_units > 0 ||
           plan_.enospc_after_bytes > 0 || plan_.short_writes > 0 ||
           plan_.fsync_failures > 0 || plan_.crash_at_write > 0 ||
           plan_.alloc_fail_after_mb > 0 || plan_.alloc_fail_units > 0 ||
           (plan_.kill_shard >= 0 && plan_.kill_shard_at_unit > 0) ||
           plan_.serve_stall_backend > 0 || plan_.serve_mangle_percent > 0.0 ||
           plan_.serve_burst > 0 || plan_.serve_hang_at_batch > 0 ||
           plan_.kill_serve_at_snapshot > 0;
}

bool FaultInjector::inject_nan_loss()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.nan_loss_every <= 0) {
        return false;
    }
    ++training_steps_;
    if (training_steps_ % static_cast<std::uint64_t>(plan_.nan_loss_every) != 0) {
        return false;
    }
    ++counters_.nan_losses;
    return true;
}

bool FaultInjector::inject_truncated_write()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.truncate_writes <= 0 ||
        counters_.truncated_writes >= static_cast<std::uint64_t>(plan_.truncate_writes)) {
        return false;
    }
    ++counters_.truncated_writes;
    return true;
}

bool FaultInjector::inject_csv_corruption()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.csv_row_percent <= 0.0) {
        return false;
    }
    if (!rng_.bernoulli(plan_.csv_row_percent / 100.0)) {
        return false;
    }
    ++counters_.corrupted_csv_rows;
    return true;
}

bool FaultInjector::inject_unit_stall()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.stall_units <= 0 ||
        unit_executions_stall_ >= static_cast<std::uint64_t>(plan_.stall_units)) {
        return false;
    }
    ++unit_executions_stall_;
    ++counters_.stalled_units;
    return true;
}

bool FaultInjector::inject_unit_transient()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.transient_units <= 0 ||
        unit_executions_transient_ >= static_cast<std::uint64_t>(plan_.transient_units)) {
        return false;
    }
    ++unit_executions_transient_;
    ++counters_.transient_units;
    return true;
}

bool FaultInjector::inject_enospc(std::size_t bytes)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.enospc_after_bytes <= 0) {
        return false;
    }
    if (durable_bytes_ + bytes > static_cast<std::uint64_t>(plan_.enospc_after_bytes)) {
        ++counters_.enospc_failures;
        return true;
    }
    durable_bytes_ += bytes;
    return false;
}

std::size_t FaultInjector::clamp_write(std::size_t length)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.short_writes <= 0 || length < 2 ||
        counters_.short_write_clamps >= static_cast<std::uint64_t>(plan_.short_writes)) {
        return length;
    }
    ++counters_.short_write_clamps;
    return length / 2;
}

bool FaultInjector::inject_fsync_failure()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.fsync_failures <= 0 ||
        counters_.fsync_failures >= static_cast<std::uint64_t>(plan_.fsync_failures)) {
        return false;
    }
    ++counters_.fsync_failures;
    return true;
}

bool FaultInjector::inject_crash_at_write()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.crash_at_write <= 0) {
        return false;
    }
    ++durable_writes_;
    return durable_writes_ == static_cast<std::uint64_t>(plan_.crash_at_write);
}

namespace {

/// Per-thread byte tally for the alloc_fail_after_mb class.  `epoch` ties the
/// tally to a configure()/begin_alloc_scope() generation so stale bytes from
/// a previous plan or unit execution never leak into the current scope.
struct AllocScope {
    std::uint64_t epoch = 0;
    std::uint64_t bytes = 0;
};

thread_local AllocScope t_alloc_scope;

} // namespace

bool FaultInjector::inject_alloc_fail(std::size_t bytes)
{
    const std::uint64_t threshold = alloc_fail_threshold_bytes_.load(std::memory_order_relaxed);
    if (threshold == 0) {
        return false;
    }
    const std::uint64_t epoch = alloc_scope_epoch_.load(std::memory_order_relaxed);
    if (t_alloc_scope.epoch != epoch) {
        t_alloc_scope.epoch = epoch;
        t_alloc_scope.bytes = 0;
    }
    if (t_alloc_scope.bytes + bytes > threshold) {
        ++alloc_rejections_;
        return true;
    }
    t_alloc_scope.bytes += bytes;
    return false;
}

void FaultInjector::begin_alloc_scope()
{
    t_alloc_scope.epoch = alloc_scope_epoch_.load(std::memory_order_relaxed);
    t_alloc_scope.bytes = 0;
}

bool FaultInjector::inject_unit_alloc_fail(std::size_t unit_index)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.alloc_fail_units <= 0 ||
        unit_index >= static_cast<std::size_t>(plan_.alloc_fail_units)) {
        return false;
    }
    ++counters_.alloc_unit_failures;
    return true;
}

bool FaultInjector::inject_shard_kill(int shard_id)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.kill_shard < 0 || plan_.kill_shard_at_unit <= 0 || shard_id != plan_.kill_shard) {
        return false;
    }
    ++shard_unit_completions_;
    if (shard_unit_completions_ != static_cast<std::uint64_t>(plan_.kill_shard_at_unit)) {
        return false;
    }
    ++counters_.shard_kills;
    return true;
}

bool FaultInjector::inject_serve_backend_stall()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.serve_stall_backend <= 0 ||
        serve_backend_calls_ >= static_cast<std::uint64_t>(plan_.serve_stall_backend)) {
        return false;
    }
    ++serve_backend_calls_;
    ++counters_.serve_backend_stalls;
    return true;
}

bool FaultInjector::inject_serve_mangle()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.serve_mangle_percent <= 0.0) {
        return false;
    }
    if (!rng_.bernoulli(plan_.serve_mangle_percent / 100.0)) {
        return false;
    }
    ++counters_.serve_mangled_packets;
    return true;
}

int FaultInjector::inject_serve_burst()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.serve_burst <= 0) {
        return 0;
    }
    ++serve_stream_events_;
    if (serve_stream_events_ % 64 != 0) {
        return 0;
    }
    ++counters_.serve_bursts;
    return plan_.serve_burst;
}

bool FaultInjector::inject_serve_hang()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.serve_hang_at_batch <= 0) {
        return false;
    }
    ++serve_batches_;
    if (serve_batches_ != static_cast<std::uint64_t>(plan_.serve_hang_at_batch)) {
        return false;
    }
    ++counters_.serve_hangs;
    return true;
}

bool FaultInjector::inject_serve_kill()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.kill_serve_at_snapshot <= 0) {
        return false;
    }
    ++serve_snapshot_commits_;
    if (serve_snapshot_commits_ != static_cast<std::uint64_t>(plan_.kill_serve_at_snapshot)) {
        return false;
    }
    ++counters_.serve_kills;
    return true;
}

FaultCounters FaultInjector::counters() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    FaultCounters counts = counters_;
    counts.alloc_rejections = alloc_rejections_.load(std::memory_order_relaxed);
    return counts;
}

std::string FaultInjector::summary() const
{
    const auto counts = counters();
    std::ostringstream out;
    out << "nan_loss=" << counts.nan_losses << " truncated_writes=" << counts.truncated_writes
        << " csv_rows=" << counts.corrupted_csv_rows << " stalled_units="
        << counts.stalled_units << " transient_units=" << counts.transient_units
        << " enospc=" << counts.enospc_failures << " short_writes="
        << counts.short_write_clamps << " fsync_fail=" << counts.fsync_failures
        << " alloc_reject=" << counts.alloc_rejections
        << " alloc_units=" << counts.alloc_unit_failures
        << " shard_kills=" << counts.shard_kills
        << " serve_stalls=" << counts.serve_backend_stalls
        << " serve_mangled=" << counts.serve_mangled_packets
        << " serve_bursts=" << counts.serve_bursts
        << " serve_hangs=" << counts.serve_hangs
        << " serve_kills=" << counts.serve_kills;
    return out.str();
}

FaultPlan fault_plan_from_env()
{
    FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(env_int("FPTC_FAULT_SEED").value_or(0));
    plan.nan_loss_every = static_cast<int>(env_int("FPTC_FAULT_NAN_EVERY").value_or(0));
    plan.truncate_writes = static_cast<int>(env_int("FPTC_FAULT_TRUNCATE_WRITES").value_or(0));
    plan.csv_row_percent =
        static_cast<double>(env_int("FPTC_FAULT_CSV_PERCENT").value_or(0));
    plan.stall_units = static_cast<int>(env_int("FPTC_FAULT_STALL_UNITS").value_or(0));
    plan.transient_units = static_cast<int>(env_int("FPTC_FAULT_TRANSIENT_UNITS").value_or(0));
    plan.enospc_after_bytes = env_int("FPTC_FAULT_ENOSPC_AFTER_BYTES").value_or(0);
    plan.short_writes = static_cast<int>(env_int("FPTC_FAULT_SHORT_WRITES").value_or(0));
    plan.fsync_failures = static_cast<int>(env_int("FPTC_FAULT_FSYNC_FAIL").value_or(0));
    plan.crash_at_write = static_cast<int>(env_int("FPTC_FAULT_CRASH_AT_WRITE").value_or(0));
    plan.alloc_fail_after_mb = env_int("FPTC_FAULT_ALLOC_FAIL_AFTER_MB").value_or(0);
    plan.alloc_fail_units = static_cast<int>(env_int("FPTC_FAULT_ALLOC_FAIL_UNITS").value_or(0));
    plan.serve_stall_backend =
        static_cast<int>(env_int("FPTC_FAULT_SERVE_STALL_BACKEND").value_or(0));
    plan.serve_mangle_percent =
        static_cast<double>(env_int("FPTC_FAULT_SERVE_MANGLE_PACKETS").value_or(0));
    plan.serve_burst = static_cast<int>(env_int("FPTC_FAULT_SERVE_BURST").value_or(0));
    plan.serve_hang_at_batch = static_cast<int>(env_int("FPTC_FAULT_SERVE_HANG").value_or(0));
    plan.kill_serve_at_snapshot =
        static_cast<int>(env_int("FPTC_FAULT_KILL_SERVE").value_or(0));
    // "s:k" = kill shard s after its k-th unit; a plain "k" targets shard 0.
    if (const char* spec = std::getenv("FPTC_FAULT_KILL_SHARD");
        spec != nullptr && *spec != '\0') {
        char* end = nullptr;
        const long first = std::strtol(spec, &end, 10);
        if (end != spec && *end == ':') {
            const char* rest = end + 1;
            const long at = std::strtol(rest, &end, 10);
            if (end != rest && *end == '\0' && first >= 0 && at > 0) {
                plan.kill_shard = static_cast<int>(first);
                plan.kill_shard_at_unit = static_cast<int>(at);
            }
        } else if (end != spec && *end == '\0' && first > 0) {
            plan.kill_shard = 0;
            plan.kill_shard_at_unit = static_cast<int>(first);
        }
    }
    return plan;
}

FaultInjector& fault_injector()
{
    static FaultInjector injector(fault_plan_from_env());
    return injector;
}

} // namespace fptc::util
