// Campaign runners: the paper's modeling campaigns as reusable functions.
//
// Every bench binary regenerating a table/figure composes these runners with
// its own replication counts (splits x seeds).  The runners implement the
// protocols of Sec. 4.2.1 (supervised UCDAVIS19 campaigns over 100-sample
// splits, evaluated on script / human / leftover), Sec. 4.4 (SimCLR
// pre-train + 10-shot fine-tune) and Sec. 4.5 (80/10/10 supervised
// replication on the mobile datasets, weighted-F1 metric).
#pragma once

#include "fptc/augment/augmentation.hpp"
#include "fptc/core/data.hpp"
#include "fptc/core/simclr.hpp"
#include "fptc/core/trainer.hpp"
#include "fptc/flow/split.hpp"
#include "fptc/stats/metrics.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"

#include <cstdint>
#include <optional>

namespace fptc::core {

/// The three UCDAVIS19 partitions generated once and shared by a campaign.
struct UcdavisData {
    flow::Dataset pretraining;
    flow::Dataset script;
    flow::Dataset human;

    [[nodiscard]] std::size_t num_classes() const noexcept
    {
        return pretraining.num_classes();
    }
};

/// Generate the three partitions (deterministic in seed/scale).
[[nodiscard]] UcdavisData load_ucdavis(double samples_scale = 0.2, std::uint64_t seed = 19);

/// Options shared by the supervised UCDAVIS19 runners.
struct SupervisedOptions {
    std::size_t per_class = 100;     ///< training samples per class (paper: 100)
    int augment_copies = 3;          ///< paper: 10; reduced default for CPU budgets
    bool with_dropout = true;        ///< listing 1 vs listing 2
    int max_epochs = 25;
    std::size_t leftover_cap = 400;  ///< subsample cap on the leftover test set (0 = all)
    flowpic::FlowpicConfig flowpic{};///< resolution / duration
    /// Use the 2-channel direction-aware flowpic (footnote 3 extension,
    /// bench/ablation_directional) instead of the paper's direction-blind one.
    bool directional = false;
    /// Training batch size.  Campaign units size this via UnitContext::batch
    /// so the executor's shrink retry halves the unit's footprint after a
    /// BudgetExceeded.
    std::size_t batch_size = 32;
    /// Executor supervision; forwarded into every training loop of the run.
    TrainHooks hooks{};
};

/// Result of one supervised experiment (one split x one training seed).
struct SupervisedRunResult {
    stats::ConfusionMatrix script_confusion;
    stats::ConfusionMatrix human_confusion;
    stats::ConfusionMatrix leftover_confusion;
    int epochs_run = 0;
    int retries = 0;          ///< divergence rollbacks across the run
    int faults_detected = 0;  ///< divergent steps observed (injected incl.)

    [[nodiscard]] double script_accuracy() const { return script_confusion.accuracy(); }
    [[nodiscard]] double human_accuracy() const { return human_confusion.accuracy(); }
    [[nodiscard]] double leftover_accuracy() const { return leftover_confusion.accuracy(); }
};

/// One supervised experiment of the Table 4 protocol: draw a 100-per-class
/// split (seeded by split_seed), 80/20 train/validation (train_seed), expand
/// the training part with the augmentation, train a LeNet and evaluate on
/// script / human / leftover.
[[nodiscard]] SupervisedRunResult run_ucdavis_supervised(const UcdavisData& data,
                                                         augment::AugmentationKind augmentation,
                                                         std::uint64_t split_seed,
                                                         std::uint64_t train_seed,
                                                         const SupervisedOptions& options);

/// Options for the SimCLR experiments (Tables 5-6).
struct SimClrOptions {
    std::size_t per_class = 100;          ///< unlabeled pool per class
    std::size_t finetune_per_class = 10;  ///< labeled samples per class
    std::size_t projection_dim = 30;
    bool with_dropout = false;
    augment::AugmentationKind first = augment::AugmentationKind::change_rtt;
    augment::AugmentationKind second = augment::AugmentationKind::time_shift;
    int pretrain_max_epochs = 12;
    flowpic::FlowpicConfig flowpic{};
    /// Contrastive batch size (samples per batch; each contributes two
    /// views).  Sized via UnitContext::batch under the executor so the
    /// shrink retry halves the unit's footprint.
    std::size_t batch_samples = 32;
    /// Executor supervision; forwarded into pre-training and fine-tuning.
    TrainHooks hooks{};
};

/// Result of one SimCLR experiment.
struct SimClrRunResult {
    stats::ConfusionMatrix script_confusion;
    stats::ConfusionMatrix human_confusion;
    int pretrain_epochs = 0;
    double top5_accuracy = 0.0;
    int retries = 0;          ///< divergence rollbacks (pre-train + fine-tune)
    int faults_detected = 0;  ///< divergent steps observed (injected incl.)

    [[nodiscard]] double script_accuracy() const { return script_confusion.accuracy(); }
    [[nodiscard]] double human_accuracy() const { return human_confusion.accuracy(); }
};

/// One SimCLR experiment of the Table 5/6 protocol: pre-train on a
/// 100-per-class unlabeled split, fine-tune a linear head on
/// finetune_per_class labeled samples of the same split, evaluate on
/// script / human.
[[nodiscard]] SimClrRunResult run_ucdavis_simclr(const UcdavisData& data, std::uint64_t split_seed,
                                                 std::uint64_t pretrain_seed,
                                                 std::uint64_t finetune_seed,
                                                 const SimClrOptions& options);

/// One SupCon experiment (Khosla et al.): like run_ucdavis_simclr but the
/// contrastive pre-training is *supervised* — all same-class views are
/// positives.  The paper lists this as future work (Sec. 5); see
/// bench/ablation_supcon.
[[nodiscard]] SimClrRunResult run_ucdavis_supcon(const UcdavisData& data, std::uint64_t split_seed,
                                                 std::uint64_t pretrain_seed,
                                                 std::uint64_t finetune_seed,
                                                 const SimClrOptions& options);

/// One supervised experiment on the *full* pretraining partition (Table 7's
/// enlarged training set): 80/20 train/validation over everything.
[[nodiscard]] SupervisedRunResult run_ucdavis_enlarged_supervised(
    const UcdavisData& data, augment::AugmentationKind augmentation, std::uint64_t seed,
    const SupervisedOptions& options);

/// SimCLR on the full pretraining partition (Table 7's last row).
[[nodiscard]] SimClrRunResult run_ucdavis_enlarged_simclr(const UcdavisData& data,
                                                          std::uint64_t seed,
                                                          const SimClrOptions& options);

/// One supervised replication experiment on a mobile dataset (Table 8
/// protocol): stratified 80/10/10, full class imbalance, weighted F1.
struct ReplicationRunResult {
    stats::ConfusionMatrix test_confusion;
    int epochs_run = 0;
    int retries = 0;          ///< divergence rollbacks across the run
    int faults_detected = 0;  ///< divergent steps observed (injected incl.)

    [[nodiscard]] double weighted_f1() const { return test_confusion.weighted_f1(); }
};

[[nodiscard]] ReplicationRunResult run_replication_supervised(
    const flow::Dataset& dataset, augment::AugmentationKind augmentation, std::uint64_t split_seed,
    std::uint64_t train_seed, const SupervisedOptions& options);

} // namespace fptc::core
