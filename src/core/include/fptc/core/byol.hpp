// BYOL — Bootstrap Your Own Latent (Grill et al., NeurIPS'20).
//
// The paper's closest related work [37] (Towhid & Shahriar) applies BYOL
// instead of SimCLR to the same dataset, and Sec. 2.4 notes the key
// difference: "some contrastive learning algorithms do not use negative
// samples [12]".  This module implements that alternative so the repository
// can compare both families (bench/ablation_byol):
//
//   online network  f_o + g_o + predictor q   (trained by gradient)
//   target network  f_t + g_t                 (EMA of the online weights)
//   loss            || normalize(q(z_o^a)) - normalize(sg(z_t^b)) ||^2,
//                   symmetrized over the two views; no negatives.
#pragma once

#include "fptc/augment/view_pair.hpp"
#include "fptc/core/campaign.hpp"
#include "fptc/core/simclr.hpp"
#include "fptc/nn/models.hpp"

#include <cstdint>

namespace fptc::core {

/// BYOL's online + target + predictor triple.
struct ByolNetwork {
    nn::SimClrNetwork online;   ///< trunk + projection trained by gradient
    nn::SimClrNetwork target;   ///< EMA copy providing regression targets
    nn::Sequential predictor;   ///< q: projection_dim -> projection_dim

    /// Representation h from the *online* trunk (used for fine-tuning).
    [[nodiscard]] nn::Tensor embed(const nn::Tensor& input)
    {
        return online.embed(input);
    }
};

/// Build the triple; the target starts as an exact copy of the online
/// network (standard BYOL initialization).
[[nodiscard]] ByolNetwork make_byol_network(const nn::ModelConfig& config);

/// BYOL pre-training hyper-parameters.
struct ByolConfig {
    std::size_t batch_samples = 32;
    double learning_rate = 1e-3;
    double ema_decay = 0.99;  ///< target <- decay*target + (1-decay)*online
    int max_epochs = 12;
    int patience = 3;         ///< on the (decreasing) regression loss
    double min_delta = 1e-3;
    std::uint64_t seed = 11;
    GuardConfig guard{};      ///< divergence detection / rollback budget
    TrainHooks hooks{};       ///< executor supervision (cancellation)
};

/// Outcome of BYOL pre-training.
struct ByolResult {
    int epochs_run = 0;
    double final_loss = 0.0;  ///< mean symmetric regression loss (in [0, 4])
    int retries = 0;          ///< divergence rollbacks performed
    int faults_detected = 0;  ///< divergent steps observed (injected incl.)
};

/// Pre-train the online network on unlabeled flows; the target follows by
/// EMA.  Uses the same view-pair machinery as SimCLR.
[[nodiscard]] ByolResult pretrain_byol(ByolNetwork& network, std::span<const flow::Flow> flows,
                                       const augment::ViewPairGenerator& views,
                                       const ByolConfig& config);

/// One BYOL experiment under the Table 5 protocol (pre-train on a
/// 100-per-class pool, fine-tune a linear head on 10 labeled samples per
/// class, evaluate on script/human) — directly comparable to
/// run_ucdavis_simclr.
[[nodiscard]] SimClrRunResult run_ucdavis_byol(const UcdavisData& data, std::uint64_t split_seed,
                                               std::uint64_t pretrain_seed,
                                               std::uint64_t finetune_seed,
                                               const SimClrOptions& options);

} // namespace fptc::core
