// Supervised training loop with the paper's early-stopping protocol.
//
// Sec. 4.2.1: "the same training settings as in the Ref-Paper: static
// learning rate at 0.001, early stopping on validation loss after 5 steps in
// which the loss does not improve by more than 0.001, batch size of 32,
// performance measured via accuracy".
#pragma once

#include "fptc/core/data.hpp"
#include "fptc/core/guard.hpp"
#include "fptc/nn/sequential.hpp"
#include "fptc/stats/metrics.hpp"
#include "fptc/util/cancel.hpp"

#include <cstdint>
#include <vector>

namespace fptc::core {

/// Supervision hooks threaded through every training loop (supervised,
/// SimCLR, SupCon, BYOL).  The campaign executor wires its per-unit
/// CancelToken in here so a watchdog deadline or campaign-wide cancellation
/// unwinds the loop at the next batch boundary — before any result is
/// committed, so a cancelled unit leaves no partial journal record.
struct TrainHooks {
    const util::CancelToken* cancel = nullptr;  ///< polled once per batch

    /// Cancellation point; throws util::CancelledError once the token trips.
    void poll() const
    {
        if (cancel != nullptr) {
            cancel->poll();
        }
    }
};

/// Training hyper-parameters (defaults = the paper's supervised protocol;
/// max_epochs is an additional cap for CPU budgets).
struct TrainConfig {
    std::size_t batch_size = 32;
    double learning_rate = 1e-3;
    int max_epochs = 30;
    int patience = 5;         ///< epochs without sufficient improvement
    double min_delta = 1e-3;  ///< required improvement of the monitored loss
    bool use_adam = true;     ///< Adam (tcbench default) vs plain SGD
    std::uint64_t seed = 7;   ///< batch shuffling seed
    GuardConfig guard{};      ///< divergence detection / rollback budget
    TrainHooks hooks{};       ///< executor supervision (cancellation)
};

/// Outcome of one training run.
struct TrainResult {
    int epochs_run = 0;
    double best_validation_loss = 0.0;
    double final_train_loss = 0.0;
    std::vector<double> validation_history;
    int retries = 0;          ///< divergence rollbacks performed
    int faults_detected = 0;  ///< divergent steps observed (injected incl.)
};

/// Train `network` on `train`, early-stopping on `validation` loss.  When
/// the validation set is empty, early stopping monitors the training loss
/// instead (the paper's fine-tuning protocol).  Divergent steps (NaN/Inf
/// loss, exploding gradients, injected faults) roll the network back to the
/// last clean epoch and retry with a derived shuffle seed and a fresh
/// optimizer; throws DivergenceError once config.guard.max_retries
/// consecutive attempts fail.
[[nodiscard]] TrainResult train_supervised(nn::Sequential& network, const SampleSet& train,
                                           const SampleSet& validation, const TrainConfig& config);

/// Run the network over a sample set and collect the confusion matrix.
[[nodiscard]] stats::ConfusionMatrix evaluate(nn::Sequential& network, const SampleSet& samples,
                                              std::size_t num_classes,
                                              std::size_t batch_size = 64);

/// Mean cross-entropy of the network over a sample set (no gradient).
[[nodiscard]] double evaluate_loss(nn::Sequential& network, const SampleSet& samples,
                                   std::size_t batch_size = 64);

} // namespace fptc::core
