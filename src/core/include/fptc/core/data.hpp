// Flowpic sample sets: the bridge between flows and tensors.
//
// A SampleSet holds rasterized (and per-image max-normalized) flowpics ready
// for batching into [B, 1, N, N] tensors.  For large resolutions (1500x1500)
// the set stores a max-pooled ~64x64 version — the documented substitution
// that keeps the "full-flowpic" experiments tractable on one CPU core
// (DESIGN.md); augmentations are still applied at the native resolution
// before pooling.
//
// augment_set implements the paper's training-set expansion: "we apply each
// of the augmentations 10 times on the 100 samples per class training set,
// which increases the training set to 1000 images per class" (the copy
// factor is configurable; FPTC defaults use a smaller factor for runtime).
#pragma once

#include "fptc/augment/augmentation.hpp"
#include "fptc/flow/dataset.hpp"
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/nn/tensor.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/rng.hpp"

#include <span>
#include <vector>

namespace fptc::core {

/// A set of rasterized flowpic samples with labels.
struct SampleSet {
    std::size_t dim = 32;                    ///< stored image side (effective)
    std::size_t native_resolution = 32;      ///< requested flowpic resolution
    std::size_t channels = 1;                ///< 1 (plain) or 2 (directional)
    std::vector<std::vector<float>> images;  ///< channels*dim*dim floats each, max-normalized
    std::vector<std::size_t> labels;
    /// Samples dropped at the data boundary because their tensor was
    /// semantically invalid (non-finite or negative pixels, wrong shape) —
    /// e.g. a corrupted cache or an injected fault.  Counted, never
    /// silently averaged into a mean±CI.
    std::size_t quarantined = 0;
    /// Accounted bytes of `images` against the process memory budget: the
    /// push/append paths grow it, validate_samples credits scrubbed samples
    /// back.  Direct writes to `images` (tests) bypass it; Charge::shrink
    /// clamps, so the accounting can undercount but never go negative.
    util::Charge storage{0, "core::SampleSet"};

    [[nodiscard]] std::size_t size() const noexcept { return images.size(); }

    /// Assemble a batch tensor [B, channels, dim, dim] from sample indices.
    [[nodiscard]] nn::Tensor batch(std::span<const std::size_t> indices) const;

    /// Single-sample tensor [1, channels, dim, dim].
    [[nodiscard]] nn::Tensor tensor_of(std::size_t index) const;

    /// Append all samples of another set (dims must match).
    void append(const SampleSet& other);
};

/// Result of a semantic validation pass over a SampleSet.
struct SampleValidationReport {
    std::size_t checked = 0;      ///< samples inspected
    std::size_t quarantined = 0;  ///< samples scrubbed from the set
    std::string first_defect;     ///< human-readable description of the first defect

    [[nodiscard]] bool clean() const noexcept { return quarantined == 0; }
};

/// Validate every sample of `set` against the flowpic tensor contract:
/// correct `channels*dim*dim` shape, all values finite, non-negative and
/// ≤ 1 (max-normalized), and positive mass for a non-empty image.  Offending
/// samples (and their labels) are scrubbed from the set in place and counted
/// in `set.quarantined`.  Use on externally sourced sets (CSV caches) before
/// training; the rasterize/augment push paths already enforce the
/// finite/non-negative/shape subset at insertion.
SampleValidationReport validate_samples(SampleSet& set);

/// Rasterize flows without augmentation.
[[nodiscard]] SampleSet rasterize(std::span<const flow::Flow> flows,
                                  const flowpic::FlowpicConfig& config);

/// Rasterize with an augmentation strategy applied `copies` times per flow
/// (the paper's x10 expansion).  For AugmentationKind::none the originals
/// are returned once regardless of `copies`.
[[nodiscard]] SampleSet augment_set(std::span<const flow::Flow> flows,
                                    augment::AugmentationKind kind, int copies,
                                    const flowpic::FlowpicConfig& config, util::Rng& rng);

/// Max-pool a flowpic to the network's effective input resolution (identity
/// below the 256 threshold).  Exposed for tests and the Fig. 4 bench.
[[nodiscard]] std::vector<float> pool_to_effective(const flowpic::Flowpic& pic);

/// Rasterize flows into 2-channel *directional* flowpics (channel 0 =
/// upstream, channel 1 = downstream) — the reformulation the paper's
/// footnote 3 sketches; exercised by bench/ablation_directional.
[[nodiscard]] SampleSet rasterize_directional(std::span<const flow::Flow> flows,
                                              const flowpic::FlowpicConfig& config);

/// Directional equivalent of augment_set.  Time-series strategies transform
/// the packet series before the directional split; image strategies are
/// applied to both channels with identical random draws so the channels stay
/// geometrically coherent.
[[nodiscard]] SampleSet augment_set_directional(std::span<const flow::Flow> flows,
                                                augment::AugmentationKind kind, int copies,
                                                const flowpic::FlowpicConfig& config,
                                                util::Rng& rng);

} // namespace fptc::core
