// Training-time divergence guards.
//
// A single NaN loss (fp16-free CPU training still diverges on unlucky
// seed/augmentation combinations, and the fault injector produces them on
// demand) used to poison every later step of a run and, through it, an
// entire campaign table.  The guard wraps a training loop with:
//
//   * detection  — non-finite or exploded loss, non-finite or exploded
//                  global gradient norm (checked every step),
//   * rollback   — parameters snapshot via nn::serialize at every clean
//                  epoch boundary, restored on detection,
//   * retry      — the caller re-runs the epoch with a derived shuffle
//                  seed and a fresh optimizer, up to a bounded budget of
//                  *consecutive* failures (faults that still allow epochs
//                  to complete never exhaust the budget).
//
// Used by train_supervised / train_head (trainer.cpp, simclr.cpp),
// pretrain_simclr / pretrain_supcon (simclr.cpp) and pretrain_byol
// (byol.cpp).
#pragma once

#include "fptc/nn/layer.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fptc::core {

/// Divergence-detection thresholds and retry budget (shared defaults for
/// all training loops).
struct GuardConfig {
    int max_retries = 3;           ///< consecutive rollbacks before giving up
    double loss_limit = 1e6;       ///< |loss| above this counts as divergence
    double grad_norm_limit = 1e8;  ///< global grad L2 norm above this diverges
};

/// Wraps one parameter set with snapshot / detect / rollback machinery.
class DivergenceGuard {
public:
    /// Captures an initial snapshot of `parameters` (the pre-training state
    /// is the first rollback target).
    DivergenceGuard(std::vector<nn::Parameter*> parameters, GuardConfig config);

    /// Check one training step.  Returns true when the step diverged: the
    /// loss is non-finite or beyond loss_limit, the accumulated gradient
    /// norm is non-finite or beyond grad_norm_limit, or the process-wide
    /// fault injector fired a NaN-loss fault for this step.
    [[nodiscard]] bool step_diverged(double loss);

    /// Record the current parameter values as the last known-good state and
    /// reset the consecutive-failure count.  Call at clean epoch boundaries.
    void commit();

    /// Restore the last known-good parameter values.  Returns false when the
    /// consecutive-retry budget is exhausted (the caller should abort the
    /// run); the parameters are restored either way.
    [[nodiscard]] bool rollback();

    /// Seed for the retry attempt, derived from `base` and the retry count
    /// so every retry reshuffles differently but deterministically.
    [[nodiscard]] std::uint64_t retry_seed(std::uint64_t base) const noexcept;

    /// Total rollbacks performed (reported in Train/SimClr/Byol results).
    [[nodiscard]] int retries() const noexcept { return retries_; }

    /// Divergent steps observed (injected faults included).
    [[nodiscard]] int faults_detected() const noexcept { return faults_detected_; }

    [[nodiscard]] const GuardConfig& config() const noexcept { return config_; }

private:
    std::vector<nn::Parameter*> parameters_;
    GuardConfig config_;
    std::string snapshot_;          ///< last-good state, nn::serialize v2 bytes
    int retries_ = 0;
    int consecutive_failures_ = 0;
    int faults_detected_ = 0;
};

/// Error thrown when a training run keeps diverging past the retry budget.
class DivergenceError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

} // namespace fptc::core
