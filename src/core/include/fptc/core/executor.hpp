// Supervised parallel campaign executor.
//
// The paper's evaluation protocol is a large grid of (config, split, seed)
// campaign units — Tables 4-9 alone are hundreds of independent trainings.
// CampaignExecutor runs those units on a fixed worker pool where every unit
// executes under a supervisor:
//
//   * watchdog   — a per-unit deadline (FPTC_UNIT_TIMEOUT_S) armed on a
//                  CancelToken that the training loops poll per batch,
//   * taxonomy   — failures are classified transient / fatal / timeout /
//                  cancelled (UnitError carries the class explicitly),
//   * retry      — transient failures re-execute the unit after a
//                  seeded-deterministic exponential backoff, up to
//                  FPTC_UNIT_RETRIES re-executions,
//   * admission  — when FPTC_MEM_BUDGET_MB is set, each unit's estimated
//                  footprint (estimate_unit_bytes) is checked against the
//                  remaining budget before a worker picks it up; units that
//                  do not fit are deferred until running units release
//                  memory.  Deadlock-free: a unit is always admitted when
//                  the pool is otherwise idle,
//   * shrink     — a unit that still hits util::BudgetExceeded mid-flight is
//                  re-executed once at half batch size (UnitContext::batch)
//                  before the degrade path takes over,
//   * degrade    — a unit that exhausts its budget (or fails terminally) is
//                  recorded as degraded with its full error chain and the
//                  campaign continues; aggregation marks the affected table
//                  cells instead of aborting the whole bench.
//
// Determinism: units are pure functions of their seeds and aggregation
// happens in submission order, so campaign tables are bit-identical for any
// FPTC_JOBS value (per-unit RNG streams already exist; the pool only changes
// *when* a unit runs, never *what* it computes).  Completed units are
// committed to the PR-1 RunJournal (thread-safe appends), so a killed
// campaign resumes bit-identically too.
//
// Retry accounting: epoch-level divergence rollbacks (DivergenceGuard) are
// reported by the *successful* attempt only — each re-execution constructs
// fresh guards, so rollbacks from abandoned attempts are never folded into
// the recorded TrainResult.  Unit-level re-executions are counted separately
// in UnitOutcome::unit_retries and the campaign summary reports both.
//
// Telemetry: the executor is the primary producer of the observability
// layer (util/telemetry.hpp).  Every unit runs under a "unit" trace span
// (args: campaign, key) nesting per-attempt / backoff / admission-wait
// spans, and the lifecycle events (retry, defer, shrink, degrade, execute,
// replay, cancel) increment `fptc_executor_*` registry counters at the
// moment they happen.  The per-instance tallies behind summary() /
// timing_summary() are *derived from outcomes()* — the outcome vector is
// the single source of truth, the registry aggregates across every executor
// in the process.  The constructor calls util::telemetry_init(), so a
// misconfigured FPTC_TRACE / FPTC_METRICS sink fails before any unit runs.
//
// Sharded execution (FPTC_SHARDS=N, requires FPTC_JOURNAL): run_all() turns
// into a *coordinator* — it fork/execs N copies of the running binary as
// shard workers (FPTC_SHARD_ID=i) that claim units cross-process via lease
// records (util/shard.hpp), each appending finished units to its own
// `<journal>.shard<i>` file.  Workers steal leases whose owner stopped
// heartbeating (a SIGKILLed shard costs one FPTC_LEASE_TTL_S, not the
// campaign), journal terminal degradations so siblings stop re-claiming
// them, and exit before any stdout aggregation (their stdout is captured to
// `<journal>.shard<i>.out`).  The coordinator reaps the fleet, folds the
// shard journals back into the base journal, merges per-shard telemetry
// into `.merged` artifacts, runs any leftover units locally, and then
// aggregates exactly like a sequential run — so campaign stdout and table
// artifacts are byte-identical to FPTC_SHARDS unset.
//
// Shutdown (util/shutdown.hpp): the constructor installs cooperative
// SIGTERM/SIGINT handlers; the scheduling loops poll the latched signal and
// trip the campaign token, and run_all() then journals a `__shutdown__`
// record, flushes telemetry, and exits 128+signum.  The constructor also
// scavenges orphan durable-I/O temp files (crash debris of a previous
// incarnation) from the journal and artifact directories.
#pragma once

#include "fptc/util/cancel.hpp"
#include "fptc/util/journal.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/shard.hpp"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace fptc::core {

/// Failure classes of the executor's error taxonomy.
enum class ErrorClass {
    transient,  ///< plausibly succeeds on re-execution (retried with backoff)
    fatal,      ///< deterministic failure; retrying cannot help
    timeout,    ///< killed by the per-unit watchdog deadline
    cancelled,  ///< campaign-wide cancellation reached the unit
};

[[nodiscard]] constexpr const char* error_class_name(ErrorClass klass) noexcept
{
    switch (klass) {
    case ErrorClass::transient: return "transient";
    case ErrorClass::fatal: return "fatal";
    case ErrorClass::timeout: return "timeout";
    case ErrorClass::cancelled: return "cancelled";
    }
    return "unknown";
}

/// Typed unit failure.  Unit functions may throw this directly to pick their
/// class; all other exceptions are classified by the executor (see
/// classify_exception).
class UnitError : public std::runtime_error {
public:
    UnitError(ErrorClass klass, const std::string& message)
        : std::runtime_error(message), class_(klass)
    {
    }

    [[nodiscard]] ErrorClass error_class() const noexcept { return class_; }

private:
    ErrorClass class_;
};

/// Executor tuning; defaults preserve the exact sequential seed behaviour.
struct ExecutorConfig {
    int jobs = 1;                 ///< worker threads (FPTC_JOBS)
    double unit_timeout_s = 0.0;  ///< per-unit watchdog deadline, 0 = off
    int unit_retries = 2;         ///< transient re-executions per unit budget
    double backoff_base_ms = 50.0;   ///< first retry delay (doubles per retry)
    double backoff_max_ms = 5000.0;  ///< delay cap
    std::uint64_t backoff_seed = 0x5EED;  ///< jitter stream seed
    /// Admission-control budget (FPTC_MEM_BUDGET_MB, bytes; 0 = off): a unit
    /// whose footprint estimate does not fit what running units leave of the
    /// budget is deferred instead of spawned.
    std::size_t mem_budget_bytes = 0;
    /// Sharded execution (FPTC_SHARDS; 0 = off): run_all() coordinates this
    /// many forked worker processes instead of executing locally.
    int shards = 0;
    /// Worker identity (FPTC_SHARD_ID; -1 = not a worker).  Set by the
    /// coordinator in each spawned worker's environment; when >= 0 it takes
    /// precedence over `shards` (workers inherit FPTC_SHARDS).
    int shard_id = -1;
    /// Cross-process lease lifetime (FPTC_LEASE_TTL_S): how long a claimed
    /// unit survives without a heartbeat before siblings may steal it.
    double lease_ttl_s = 30.0;
};

/// Resolve the executor configuration from FPTC_JOBS, FPTC_UNIT_TIMEOUT_S,
/// FPTC_UNIT_RETRIES, FPTC_UNIT_BACKOFF_MS, FPTC_MEM_BUDGET_MB, FPTC_SHARDS,
/// FPTC_SHARD_ID and FPTC_LEASE_TTL_S.
[[nodiscard]] ExecutorConfig executor_config_from_env();

/// Inputs of a unit's memory-footprint estimate.
struct FootprintEstimate {
    std::size_t resolution = 32;    ///< native flowpic resolution
    std::size_t samples = 0;        ///< training samples (after augmentation)
    std::size_t eval_samples = 0;   ///< validation/test samples
    std::size_t batch = 32;         ///< training batch size
    std::size_t channels = 1;       ///< flowpic channels (1 or 2)
};

/// Estimate the accounted working-set bytes of one campaign unit: the stored
/// sample sets at the network's effective input dimension, the transient
/// native-resolution rasterization grids, and the per-batch tensor traffic
/// of a training step.  Intentionally coarse (admission control needs the
/// right order of magnitude, not allocator truth) but monotone in every
/// input, so bigger cells always report bigger estimates.
[[nodiscard]] std::size_t estimate_unit_bytes(const FootprintEstimate& estimate);

/// Deterministic backoff before re-execution `retry` (1-based) of `key`:
/// exponential in the retry index with seeded jitter in [0.5, 1.5), capped
/// at backoff_max_ms.  Pure in (config, key, retry) — tests rely on this.
[[nodiscard]] double backoff_delay_ms(const ExecutorConfig& config, const std::string& key,
                                      int retry);

/// How a unit ended.
enum class UnitStatus {
    ok,         ///< executed and committed
    replayed,   ///< resumed from the journal without executing
    degraded,   ///< failed terminally; campaign continued without it
    cancelled,  ///< campaign cancelled before/while the unit ran
};

/// Per-unit record of one supervised execution.
struct UnitOutcome {
    std::string key;
    UnitStatus status = UnitStatus::ok;
    std::map<std::string, std::string> fields;  ///< metrics (ok / replayed)
    std::vector<std::string> error_chain;       ///< "class: message" per attempt
    int attempts = 0;      ///< executions performed (0 when replayed)
    int unit_retries = 0;  ///< re-executions after transient failures
    int shrinks = 0;       ///< batch halvings after BudgetExceeded (0 or 1)
    bool deferred = false; ///< waited at least once for admission-control memory
    double busy_seconds = 0.0;  ///< wall time spent executing this unit
    ErrorClass final_error = ErrorClass::transient;  ///< set when degraded/cancelled

    [[nodiscard]] bool succeeded() const noexcept
    {
        return status == UnitStatus::ok || status == UnitStatus::replayed;
    }
};

/// Per-attempt execution context handed to a unit function.  Carries the
/// watchdog token (wire it into the campaign options' TrainHooks) and the
/// resource-governance state of this attempt: `shrink` counts the batch
/// halvings applied after a BudgetExceeded, and batch() maps a nominal batch
/// size to the effective one.
struct UnitContext {
    const util::CancelToken& cancel;  ///< per-attempt watchdog token
    int shrink = 0;                   ///< halvings applied (0 on the first try)

    /// Effective batch size for this attempt: `base` halved `shrink` times,
    /// never below 1.
    [[nodiscard]] std::size_t batch(std::size_t base) const noexcept
    {
        const std::size_t halved = base >> static_cast<unsigned>(shrink);
        return halved < 1 ? 1 : halved;
    }
};

/// Fixed-pool supervised executor for one campaign's units.
///
/// Usage: submit() every unit (cheap closures capturing seeds/options), then
/// run_all() once, then aggregate outcomes() in submission order.  The unit
/// function receives the per-attempt UnitContext; wire its cancel token into
/// the campaign options' TrainHooks so the watchdog reaches the training
/// loops, and size batches with ctx.batch() so the shrink retry works.
class CampaignExecutor {
public:
    using UnitFn = std::function<std::map<std::string, std::string>(const UnitContext&)>;

    /// `campaign` namespaces journal keys (journaling armed by FPTC_JOURNAL,
    /// exactly as CampaignJournal does).
    explicit CampaignExecutor(std::string campaign,
                              ExecutorConfig config = executor_config_from_env());

    /// Queue a unit; returns its index.  Not thread-safe; submit everything
    /// before run_all().  `estimated_bytes` (estimate_unit_bytes) feeds the
    /// admission control; 0 = unknown, always admissible.
    std::size_t submit(std::string key, UnitFn run, std::size_t estimated_bytes = 0);

    /// Execute all submitted units on the pool (blocks).  Journal-completed
    /// units are replayed without occupying a worker.  Safe to call once.
    void run_all();

    /// Trip the campaign-wide token: running units unwind at their next
    /// poll, pending units are marked cancelled.  Callable from any thread.
    void cancel_all() const noexcept { campaign_cancel_.cancel(util::CancelKind::cancelled); }

    /// True when this process is a shard worker (FPTC_SHARD_ID >= 0).  Bench
    /// drivers must skip stdout aggregation and artifact writes in workers —
    /// only the coordinator (or a sequential run) owns those.
    [[nodiscard]] bool is_shard_worker() const noexcept { return config_.shard_id >= 0; }

    /// True when run_all() will coordinate a worker fleet (FPTC_SHARDS >= 1
    /// and not itself a worker).
    [[nodiscard]] bool is_shard_coordinator() const noexcept
    {
        return config_.shards >= 1 && !is_shard_worker();
    }

    [[nodiscard]] const std::vector<UnitOutcome>& outcomes() const noexcept
    {
        return outcomes_;
    }
    [[nodiscard]] const UnitOutcome& outcome(std::size_t index) const
    {
        return outcomes_.at(index);
    }

    // Tallies are derived from outcomes() — the outcome vector is the single
    // source of truth after run_all() returns (the registry counters mirror
    // the same events process-wide).  Call after run_all(), like outcomes().
    [[nodiscard]] std::size_t units() const noexcept { return units_.size(); }
    [[nodiscard]] std::size_t executed() const noexcept;
    [[nodiscard]] std::size_t resumed() const noexcept;
    [[nodiscard]] std::size_t degraded() const noexcept;
    [[nodiscard]] std::size_t retried_units() const noexcept;
    /// Units that waited at least once because their footprint estimate did
    /// not fit the remaining admission budget.
    [[nodiscard]] std::size_t deferred_units() const noexcept;
    /// Units re-executed at half batch size after a BudgetExceeded.
    [[nodiscard]] std::size_t shrunk_units() const noexcept;

    /// Deterministic one-line summary for campaign stdout (counts only — no
    /// timings, so bench output stays bit-identical across FPTC_JOBS).
    [[nodiscard]] std::string summary() const;

    /// Wall-clock / busy-time / speedup line for stderr logging (timings are
    /// inherently nondeterministic, so they never go to stdout).
    [[nodiscard]] std::string timing_summary() const;

    [[nodiscard]] const ExecutorConfig& config() const noexcept { return config_; }

private:
    struct Unit {
        std::string key;
        UnitFn run;
        std::size_t estimated_bytes = 0;  ///< admission-control footprint
    };

    void run_unit(std::size_t index);
    void worker_loop();
    /// Worker-mode scheduling loop: like worker_loop, but every slot is
    /// claimed cross-process (lease) or adopted from a sibling's journal
    /// before it runs.
    void worker_loop_sharded();
    /// Fill `outcome` for `key` from journaled `fields`, interpreting
    /// reserved failure records (__status__=degraded) as degraded outcomes.
    static void outcome_from_record(UnitOutcome& outcome, const std::string& key,
                                    std::map<std::string, std::string> fields);
    /// Replay pending slots against the (re-loaded) journal; keeps only the
    /// still-unresolved ones in pending_.
    void replay_pending();
    /// Coordinator path: spawn the worker fleet, reap it, fold the shard
    /// journals and telemetry back together.
    void run_shard_coordinator();
    /// Trip the campaign token when a shutdown signal is latched.
    void poll_shutdown() const noexcept;
    void start_heartbeat_thread();
    void stop_heartbeat_thread();

    std::string campaign_;
    ExecutorConfig config_;
    util::CampaignJournal journal_;
    mutable util::CancelToken campaign_cancel_;
    std::vector<Unit> units_;
    std::vector<UnitOutcome> outcomes_;
    std::vector<std::size_t> pending_;  ///< indexes needing execution
    bool ran_ = false;

    // Admission scheduler: workers claim pending slots under sched_mutex_,
    // skipping units whose estimate does not fit what the running set leaves
    // of mem_budget_bytes; they park on sched_cv_ until a completion frees
    // estimated memory.  A unit is always admitted when nothing is running,
    // so the scheduler cannot deadlock on an oversized estimate.
    std::mutex sched_mutex_;
    std::condition_variable sched_cv_;
    std::vector<char> claimed_;          ///< pending slot picked by a worker
    std::vector<char> deferred_marked_;  ///< pending slot counted as deferred
    std::size_t running_ = 0;            ///< units currently executing
    std::size_t est_outstanding_ = 0;    ///< estimate sum of running units

    // Shard-worker state: the lease store and sibling-journal view are not
    // internally synchronized, so every touch happens under lease_mutex_
    // (shared with the heartbeat thread).  foreign_until_ms_ marks pending
    // slots recently seen under an unexpired foreign lease, so the claim
    // loop stops hammering the lease file for them.
    std::mutex lease_mutex_;
    std::optional<util::LeaseStore> lease_store_;
    std::optional<util::ShardJournalSet> sibling_journals_;
    std::vector<std::int64_t> foreign_until_ms_;  ///< per pending slot
    std::vector<std::string> inflight_keys_;      ///< leases to heartbeat
    std::thread heartbeat_thread_;
    std::condition_variable heartbeat_cv_;
    bool heartbeat_stop_ = false;

    double wall_seconds_ = 0.0;
};

/// Map an in-flight exception to the taxonomy.  UnitError keeps its class;
/// CancelledError maps to timeout/cancelled; DivergenceError is fatal (the
/// unit is deterministic in its seeds, so it would diverge again);
/// util::IoError follows its own transient() hint (ENOSPC/fsync failures
/// are retryable resource exhaustion, bad paths are not);
/// util::BudgetExceeded follows its transient() hint too (memory pressure
/// passes once concurrent units release their charges — and the executor
/// additionally grants it one shrink retry at half batch size);
/// std::bad_alloc is transient; anything else is fatal.
[[nodiscard]] ErrorClass classify_exception(const std::exception& error) noexcept;

} // namespace fptc::core
