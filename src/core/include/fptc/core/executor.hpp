// Supervised parallel campaign executor.
//
// The paper's evaluation protocol is a large grid of (config, split, seed)
// campaign units — Tables 4-9 alone are hundreds of independent trainings.
// CampaignExecutor runs those units on a fixed worker pool where every unit
// executes under a supervisor:
//
//   * watchdog   — a per-unit deadline (FPTC_UNIT_TIMEOUT_S) armed on a
//                  CancelToken that the training loops poll per batch,
//   * taxonomy   — failures are classified transient / fatal / timeout /
//                  cancelled (UnitError carries the class explicitly),
//   * retry      — transient failures re-execute the unit after a
//                  seeded-deterministic exponential backoff, up to
//                  FPTC_UNIT_RETRIES re-executions,
//   * degrade    — a unit that exhausts its budget (or fails terminally) is
//                  recorded as degraded with its full error chain and the
//                  campaign continues; aggregation marks the affected table
//                  cells instead of aborting the whole bench.
//
// Determinism: units are pure functions of their seeds and aggregation
// happens in submission order, so campaign tables are bit-identical for any
// FPTC_JOBS value (per-unit RNG streams already exist; the pool only changes
// *when* a unit runs, never *what* it computes).  Completed units are
// committed to the PR-1 RunJournal (thread-safe appends), so a killed
// campaign resumes bit-identically too.
//
// Retry accounting: epoch-level divergence rollbacks (DivergenceGuard) are
// reported by the *successful* attempt only — each re-execution constructs
// fresh guards, so rollbacks from abandoned attempts are never folded into
// the recorded TrainResult.  Unit-level re-executions are counted separately
// in UnitOutcome::unit_retries and the campaign summary reports both.
#pragma once

#include "fptc/util/cancel.hpp"
#include "fptc/util/journal.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace fptc::core {

/// Failure classes of the executor's error taxonomy.
enum class ErrorClass {
    transient,  ///< plausibly succeeds on re-execution (retried with backoff)
    fatal,      ///< deterministic failure; retrying cannot help
    timeout,    ///< killed by the per-unit watchdog deadline
    cancelled,  ///< campaign-wide cancellation reached the unit
};

[[nodiscard]] constexpr const char* error_class_name(ErrorClass klass) noexcept
{
    switch (klass) {
    case ErrorClass::transient: return "transient";
    case ErrorClass::fatal: return "fatal";
    case ErrorClass::timeout: return "timeout";
    case ErrorClass::cancelled: return "cancelled";
    }
    return "unknown";
}

/// Typed unit failure.  Unit functions may throw this directly to pick their
/// class; all other exceptions are classified by the executor (see
/// classify_exception).
class UnitError : public std::runtime_error {
public:
    UnitError(ErrorClass klass, const std::string& message)
        : std::runtime_error(message), class_(klass)
    {
    }

    [[nodiscard]] ErrorClass error_class() const noexcept { return class_; }

private:
    ErrorClass class_;
};

/// Executor tuning; defaults preserve the exact sequential seed behaviour.
struct ExecutorConfig {
    int jobs = 1;                 ///< worker threads (FPTC_JOBS)
    double unit_timeout_s = 0.0;  ///< per-unit watchdog deadline, 0 = off
    int unit_retries = 2;         ///< transient re-executions per unit budget
    double backoff_base_ms = 50.0;   ///< first retry delay (doubles per retry)
    double backoff_max_ms = 5000.0;  ///< delay cap
    std::uint64_t backoff_seed = 0x5EED;  ///< jitter stream seed
};

/// Resolve the executor configuration from FPTC_JOBS, FPTC_UNIT_TIMEOUT_S,
/// FPTC_UNIT_RETRIES and FPTC_UNIT_BACKOFF_MS.
[[nodiscard]] ExecutorConfig executor_config_from_env();

/// Deterministic backoff before re-execution `retry` (1-based) of `key`:
/// exponential in the retry index with seeded jitter in [0.5, 1.5), capped
/// at backoff_max_ms.  Pure in (config, key, retry) — tests rely on this.
[[nodiscard]] double backoff_delay_ms(const ExecutorConfig& config, const std::string& key,
                                      int retry);

/// How a unit ended.
enum class UnitStatus {
    ok,         ///< executed and committed
    replayed,   ///< resumed from the journal without executing
    degraded,   ///< failed terminally; campaign continued without it
    cancelled,  ///< campaign cancelled before/while the unit ran
};

/// Per-unit record of one supervised execution.
struct UnitOutcome {
    std::string key;
    UnitStatus status = UnitStatus::ok;
    std::map<std::string, std::string> fields;  ///< metrics (ok / replayed)
    std::vector<std::string> error_chain;       ///< "class: message" per attempt
    int attempts = 0;      ///< executions performed (0 when replayed)
    int unit_retries = 0;  ///< re-executions after transient failures
    double busy_seconds = 0.0;  ///< wall time spent executing this unit
    ErrorClass final_error = ErrorClass::transient;  ///< set when degraded/cancelled

    [[nodiscard]] bool succeeded() const noexcept
    {
        return status == UnitStatus::ok || status == UnitStatus::replayed;
    }
};

/// Fixed-pool supervised executor for one campaign's units.
///
/// Usage: submit() every unit (cheap closures capturing seeds/options), then
/// run_all() once, then aggregate outcomes() in submission order.  The unit
/// function receives the per-attempt CancelToken; wire it into the campaign
/// options' TrainHooks so the watchdog reaches the training loops.
class CampaignExecutor {
public:
    using UnitFn =
        std::function<std::map<std::string, std::string>(const util::CancelToken&)>;

    /// `campaign` namespaces journal keys (journaling armed by FPTC_JOURNAL,
    /// exactly as CampaignJournal does).
    explicit CampaignExecutor(std::string campaign,
                              ExecutorConfig config = executor_config_from_env());

    /// Queue a unit; returns its index.  Not thread-safe; submit everything
    /// before run_all().
    std::size_t submit(std::string key, UnitFn run);

    /// Execute all submitted units on the pool (blocks).  Journal-completed
    /// units are replayed without occupying a worker.  Safe to call once.
    void run_all();

    /// Trip the campaign-wide token: running units unwind at their next
    /// poll, pending units are marked cancelled.  Callable from any thread.
    void cancel_all() const noexcept { campaign_cancel_.cancel(util::CancelKind::cancelled); }

    [[nodiscard]] const std::vector<UnitOutcome>& outcomes() const noexcept
    {
        return outcomes_;
    }
    [[nodiscard]] const UnitOutcome& outcome(std::size_t index) const
    {
        return outcomes_.at(index);
    }

    [[nodiscard]] std::size_t units() const noexcept { return units_.size(); }
    [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
    [[nodiscard]] std::size_t resumed() const noexcept { return resumed_; }
    [[nodiscard]] std::size_t degraded() const noexcept { return degraded_count_; }
    [[nodiscard]] std::size_t retried_units() const noexcept { return retried_units_; }

    /// Deterministic one-line summary for campaign stdout (counts only — no
    /// timings, so bench output stays bit-identical across FPTC_JOBS).
    [[nodiscard]] std::string summary() const;

    /// Wall-clock / busy-time / speedup line for stderr logging (timings are
    /// inherently nondeterministic, so they never go to stdout).
    [[nodiscard]] std::string timing_summary() const;

    [[nodiscard]] const ExecutorConfig& config() const noexcept { return config_; }

private:
    struct Unit {
        std::string key;
        UnitFn run;
    };

    void run_unit(std::size_t index);
    void worker_loop();

    std::string campaign_;
    ExecutorConfig config_;
    util::CampaignJournal journal_;
    mutable util::CancelToken campaign_cancel_;
    std::vector<Unit> units_;
    std::vector<UnitOutcome> outcomes_;
    std::vector<std::size_t> pending_;  ///< indexes needing execution
    std::atomic<std::size_t> next_pending_{0};
    bool ran_ = false;

    std::size_t executed_ = 0;
    std::size_t resumed_ = 0;
    std::size_t degraded_count_ = 0;
    std::size_t retried_units_ = 0;
    double wall_seconds_ = 0.0;
    double busy_seconds_ = 0.0;
};

/// Map an in-flight exception to the taxonomy.  UnitError keeps its class;
/// CancelledError maps to timeout/cancelled; DivergenceError is fatal (the
/// unit is deterministic in its seeds, so it would diverge again);
/// util::IoError follows its own transient() hint (ENOSPC/fsync failures
/// are retryable resource exhaustion, bad paths are not); std::bad_alloc
/// is transient (memory pressure passes); anything else is fatal.
[[nodiscard]] ErrorClass classify_exception(const std::exception& error) noexcept;

} // namespace fptc::core
