// SimCLR pre-training + few-shot fine-tuning (the paper's G2 pipeline).
//
// Pre-training (Sec. 4.4): "In each training step, a double batch of 32
// unlabeled images (taken from the pool of 100 unlabelled samples per class)
// is loaded after applying the two augmentations" with NT-Xent at
// temperature 0.07, learning rate 0.001 and "patience of 3 on the top-5
// accuracy".
//
// Fine-tuning: the pre-trained representation (the 120-d h) is frozen and a
// fresh linear classifier is trained on a few labeled samples with
// "patience of 5 on train (min delta=0.001) ... (learning rate=0.01)".
// Because the trunk is frozen, fine-tuning operates on cached embeddings —
// mathematically identical to listing 5's masked network, and much faster.
#pragma once

#include "fptc/augment/view_pair.hpp"
#include "fptc/core/data.hpp"
#include "fptc/core/trainer.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/stats/metrics.hpp"

#include <cstdint>

namespace fptc::core {

/// SimCLR pre-training hyper-parameters (paper defaults).
struct SimClrConfig {
    std::size_t batch_samples = 32; ///< samples per step (views = 2x this)
    double temperature = 0.07;
    double learning_rate = 1e-3;
    int max_epochs = 20;
    int patience = 3;               ///< on the top-5 contrastive accuracy
    std::uint64_t seed = 11;
    GuardConfig guard{};            ///< divergence detection / rollback budget
    TrainHooks hooks{};             ///< executor supervision (cancellation)
};

/// Pre-training outcome.
struct SimClrResult {
    int epochs_run = 0;
    double best_top5_accuracy = 0.0;
    double final_loss = 0.0;
    int retries = 0;          ///< divergence rollbacks performed
    int faults_detected = 0;  ///< divergent steps observed (injected incl.)
};

/// Pre-train `network` on unlabeled flows with the view-pair generator.
[[nodiscard]] SimClrResult pretrain_simclr(nn::SimClrNetwork& network,
                                           std::span<const flow::Flow> flows,
                                           const augment::ViewPairGenerator& views,
                                           const SimClrConfig& config);

/// Supervised-contrastive pre-training (SupCon, Khosla et al.): identical
/// batching to pretrain_simclr, but the loss treats every view of every flow
/// with the same label as a positive.  Labels are taken from Flow::label.
[[nodiscard]] SimClrResult pretrain_supcon(nn::SimClrNetwork& network,
                                           std::span<const flow::Flow> flows,
                                           const augment::ViewPairGenerator& views,
                                           const SimClrConfig& config);

/// Frozen-trunk embeddings of a sample set: features is [N, 120].
struct EmbeddedSet {
    nn::Tensor features;
    std::vector<std::size_t> labels;

    [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

/// Compute frozen-trunk embeddings (h, 120-d) of a sample set.
[[nodiscard]] EmbeddedSet embed_set(nn::SimClrNetwork& network, const SampleSet& samples);

/// Train a linear head on embeddings (early stopping on train loss when the
/// config's monitored set is empty — the paper's fine-tune protocol).
[[nodiscard]] TrainResult train_head(nn::Sequential& head, const EmbeddedSet& train,
                                     const TrainConfig& config);

/// Classify embeddings with the head and fill a confusion matrix.
[[nodiscard]] stats::ConfusionMatrix evaluate_head(nn::Sequential& head, const EmbeddedSet& samples,
                                                   std::size_t num_classes);

/// Convenience: embed train/test through the frozen trunk, fine-tune the
/// head and return the test confusion matrix.
[[nodiscard]] stats::ConfusionMatrix finetune_and_evaluate(nn::SimClrNetwork& network,
                                                           nn::Sequential& head,
                                                           const SampleSet& train,
                                                           const SampleSet& test,
                                                           std::size_t num_classes,
                                                           const TrainConfig& config);

/// The paper's fine-tuning TrainConfig (LR 0.01, patience 5 on train loss).
[[nodiscard]] TrainConfig finetune_config(std::uint64_t seed);

} // namespace fptc::core
