#include "fptc/core/executor.hpp"

#include "fptc/core/guard.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>
#include <thread>

namespace fptc::core {

namespace {

/// FNV-1a over the unit key: a stable, platform-independent stream id for
/// the backoff jitter (std::hash is not stable across implementations).
[[nodiscard]] std::uint64_t key_hash(const std::string& key) noexcept
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

ExecutorConfig executor_config_from_env()
{
    ExecutorConfig config;
    config.jobs = static_cast<int>(util::env_int("FPTC_JOBS").value_or(1));
    config.jobs = std::max(1, config.jobs);
    config.unit_timeout_s = util::env_double("FPTC_UNIT_TIMEOUT_S").value_or(0.0);
    config.unit_retries = static_cast<int>(util::env_int("FPTC_UNIT_RETRIES").value_or(2));
    config.unit_retries = std::max(0, config.unit_retries);
    config.backoff_base_ms = util::env_double("FPTC_UNIT_BACKOFF_MS").value_or(50.0);
    config.mem_budget_bytes =
        static_cast<std::size_t>(util::env_int("FPTC_MEM_BUDGET_MB").value_or(0)) * 1024 * 1024;
    return config;
}

std::size_t estimate_unit_bytes(const FootprintEstimate& estimate)
{
    const std::size_t d = nn::effective_input_dim(estimate.resolution);
    const std::size_t channels = std::max<std::size_t>(1, estimate.channels);
    const std::size_t pixel_bytes = channels * d * d * sizeof(float);
    // Stored sample sets (train + eval) at the effective input dimension.
    const std::size_t stored = (estimate.samples + estimate.eval_samples) * pixel_bytes;
    // Two native-resolution grids alive while a flow rasterizes (the flowpic
    // plus its pooled copy; directional sets hold an up/down pair).
    const std::size_t rasterize = 2 * estimate.resolution * estimate.resolution * sizeof(float);
    // Per-step tensor traffic: input batch plus activations and gradients,
    // a conservative constant multiple of the batch tensor.
    const std::size_t batch_traffic = std::max<std::size_t>(1, estimate.batch) * pixel_bytes * 12;
    return stored + rasterize + batch_traffic;
}

double backoff_delay_ms(const ExecutorConfig& config, const std::string& key, int retry)
{
    if (retry < 1 || config.backoff_base_ms <= 0.0) {
        return 0.0;
    }
    double delay = config.backoff_base_ms;
    for (int i = 1; i < retry; ++i) {
        delay *= 2.0;
        if (delay >= config.backoff_max_ms) {
            break;
        }
    }
    util::Rng jitter(util::mix_seed(config.backoff_seed, key_hash(key),
                                    static_cast<std::uint64_t>(retry)));
    delay *= 0.5 + jitter.uniform();
    return std::min(delay, config.backoff_max_ms);
}

ErrorClass classify_exception(const std::exception& error) noexcept
{
    if (const auto* unit_error = dynamic_cast<const UnitError*>(&error)) {
        return unit_error->error_class();
    }
    if (const auto* cancelled = dynamic_cast<const util::CancelledError*>(&error)) {
        return cancelled->kind() == util::CancelKind::timeout ? ErrorClass::timeout
                                                              : ErrorClass::cancelled;
    }
    if (dynamic_cast<const DivergenceError*>(&error) != nullptr) {
        return ErrorClass::fatal;
    }
    if (const auto* io_error = dynamic_cast<const util::IoError*>(&error)) {
        // Durable-I/O failures carry their own hint: ENOSPC / fsync trouble
        // is resource exhaustion (retry, then degrade the cell), a bad path
        // or unexpected syscall error is deterministic.
        return io_error->transient() ? ErrorClass::transient : ErrorClass::fatal;
    }
    if (const auto* budget = dynamic_cast<const util::BudgetExceeded*>(&error)) {
        // Memory-budget refusals carry the same kind of hint: pressure from
        // concurrent units passes, a structurally oversized unit does not.
        return budget->transient() ? ErrorClass::transient : ErrorClass::fatal;
    }
    if (dynamic_cast<const std::bad_alloc*>(&error) != nullptr) {
        return ErrorClass::transient;
    }
    return ErrorClass::fatal;
}

CampaignExecutor::CampaignExecutor(std::string campaign, ExecutorConfig config)
    : campaign_(std::move(campaign)), config_(config), journal_(campaign_)
{
    // Resolve and validate the telemetry sinks now, on the campaign's main
    // thread: an empty or unwritable FPTC_TRACE / FPTC_METRICS target throws
    // util::EnvError here, before any unit has sunk CPU time.
    util::telemetry_init();
}

std::size_t CampaignExecutor::submit(std::string key, UnitFn run, std::size_t estimated_bytes)
{
    units_.push_back(Unit{std::move(key), std::move(run), estimated_bytes});
    return units_.size() - 1;
}

void CampaignExecutor::run_unit(std::size_t index)
{
    const Unit& unit = units_[index];
    FPTC_TRACE_SPAN("unit", {{"campaign", campaign_.c_str()}, {"key", unit.key.c_str()}});
    UnitOutcome outcome;
    outcome.key = unit.key;
    const auto unit_start = std::chrono::steady_clock::now();

    const int max_attempts = config_.unit_retries + 1;
    int shrink = 0;
    bool shrink_retry_used = false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (campaign_cancel_.cancelled()) {
            outcome.status = UnitStatus::cancelled;
            outcome.final_error = ErrorClass::cancelled;
            outcome.error_chain.push_back("cancelled: campaign cancelled before attempt");
            break;
        }
        if (attempt > 0) {
            FPTC_TRACE_SPAN("backoff");
            util::metrics().counter("fptc_executor_retries_total").add(1);
            const double delay = backoff_delay_ms(config_, unit.key, attempt);
            util::log_info("executor[" + campaign_ + "]: retrying " + unit.key +
                           " (unit retry " + std::to_string(attempt) + "/" +
                           std::to_string(config_.unit_retries) + " after " +
                           std::to_string(static_cast<long>(delay)) + "ms backoff)");
            std::this_thread::sleep_for(
                std::chrono::microseconds(static_cast<std::int64_t>(delay * 1000.0)));
            ++outcome.unit_retries;
        }
        ++outcome.attempts;
        FPTC_TRACE_SPAN("attempt");

        util::CancelToken token;
        token.set_parent(&campaign_cancel_);
        token.set_timeout(config_.unit_timeout_s);
        if (util::fault_injector().inject_unit_stall()) {
            // Simulated hang: the unit's next poll sleeps until the watchdog
            // deadline trips it (capped so a stall without a watchdog ends).
            const auto cap_ms = config_.unit_timeout_s > 0.0
                                    ? static_cast<std::int64_t>(config_.unit_timeout_s * 2000.0) + 1000
                                    : std::int64_t{500};
            token.arm_stall(std::chrono::milliseconds(cap_ms));
        }
        // Every attempt gets a fresh allocation-fault byte scope, so the
        // FPTC_FAULT_ALLOC_FAIL_AFTER_MB refusal point depends only on this
        // unit's own charges — deterministic for any FPTC_JOBS.
        util::fault_injector().begin_alloc_scope();

        try {
            if (util::fault_injector().inject_unit_transient()) {
                throw UnitError(ErrorClass::transient, "injected transient fault");
            }
            if (shrink == 0 && util::fault_injector().inject_unit_alloc_fail(index)) {
                throw util::BudgetExceeded("fault-injected unit " + unit.key,
                                           unit.estimated_bytes, 0);
            }
            const UnitContext context{token, shrink};
            outcome.fields = unit.run(context);
            outcome.status = UnitStatus::ok;
            journal_.commit(unit.key, outcome.fields);
            break;
        } catch (const std::exception& error) {
            const ErrorClass klass = classify_exception(error);
            outcome.error_chain.push_back(std::string(error_class_name(klass)) + ": " +
                                          error.what());
            outcome.final_error = klass;
            const bool budget_refusal =
                dynamic_cast<const util::BudgetExceeded*>(&error) != nullptr;
            if (budget_refusal && !shrink_retry_used && klass == ErrorClass::transient) {
                // OOM-graceful path: one immediate re-execution at half batch
                // size.  It does not consume the transient retry budget —
                // halving the footprint is the mitigation, not waiting.
                shrink_retry_used = true;
                shrink = 1;
                outcome.shrinks = 1;
                util::metrics().counter("fptc_executor_shrunk_total").add(1);
                util::log_info("executor[" + campaign_ + "]: unit " + unit.key +
                               " hit the memory budget; retrying at half batch size");
                --attempt;
                continue;
            }
            if (klass == ErrorClass::transient && attempt + 1 < max_attempts) {
                continue;
            }
            outcome.status = klass == ErrorClass::cancelled ? UnitStatus::cancelled
                                                            : UnitStatus::degraded;
            util::log_info("executor[" + campaign_ + "]: unit " + unit.key + " " +
                           (outcome.status == UnitStatus::cancelled ? "cancelled"
                                                                    : "degraded") +
                           " after " + std::to_string(outcome.attempts) + " attempt(s): " +
                           outcome.error_chain.back());
            break;
        }
    }
    outcome.busy_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - unit_start).count();
    outcomes_[index] = std::move(outcome);
}

void CampaignExecutor::worker_loop()
{
    std::unique_lock<std::mutex> lock(sched_mutex_);
    while (true) {
        const std::size_t budget = config_.mem_budget_bytes;
        std::size_t pick = pending_.size();
        bool any_unclaimed = false;
        for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
            if (claimed_[slot] != 0) {
                continue;
            }
            any_unclaimed = true;
            const std::size_t estimate = units_[pending_[slot]].estimated_bytes;
            const bool fits = budget == 0 || estimate == 0 ||
                              (est_outstanding_ < budget && estimate <= budget - est_outstanding_);
            // Deadlock-free admission: with nothing running there is nothing
            // to wait for, so even an over-budget estimate is admitted (the
            // accountant still enforces the hard cap mid-unit).
            if (fits || running_ == 0) {
                pick = slot;
                break;
            }
            if (deferred_marked_[slot] == 0) {
                deferred_marked_[slot] = 1;
                util::metrics().counter("fptc_executor_deferred_total").add(1);
                util::log_info("executor[" + campaign_ + "]: deferring " +
                               units_[pending_[slot]].key + " (estimate " +
                               std::to_string(estimate) + " B over remaining budget)");
            }
        }
        if (!any_unclaimed) {
            return;
        }
        if (pick == pending_.size()) {
            // Nothing admissible right now; park until a unit completes.
            FPTC_TRACE_SPAN("admission_wait");
            sched_cv_.wait(lock);
            continue;
        }
        claimed_[pick] = 1;
        ++running_;
        const std::size_t estimate = units_[pending_[pick]].estimated_bytes;
        est_outstanding_ += estimate;
        lock.unlock();
        run_unit(pending_[pick]);
        lock.lock();
        --running_;
        est_outstanding_ -= estimate;
        sched_cv_.notify_all();
    }
}

void CampaignExecutor::run_all()
{
    if (ran_) {
        throw std::logic_error("CampaignExecutor::run_all: already ran");
    }
    ran_ = true;
    outcomes_.assign(units_.size(), UnitOutcome{});
    util::metrics().counter("fptc_executor_units_total").add(units_.size());
    // Touch the event-site counters so a clean campaign still exports the
    // full executor instrument set at zero.
    for (const char* name :
         {"fptc_executor_executed_total", "fptc_executor_replayed_total",
          "fptc_executor_retries_total", "fptc_executor_deferred_total",
          "fptc_executor_shrunk_total", "fptc_executor_degraded_total",
          "fptc_executor_cancelled_total", "fptc_membudget_rejections_total"}) {
        (void)util::metrics().counter(name);
    }

    // Replay journal-completed units up front; only the rest hit the pool.
    {
        FPTC_TRACE_SPAN("journal_replay");
        for (std::size_t i = 0; i < units_.size(); ++i) {
            if (auto fields = journal_.try_replay(units_[i].key)) {
                outcomes_[i].key = units_[i].key;
                outcomes_[i].status = UnitStatus::replayed;
                outcomes_[i].fields = *std::move(fields);
            } else {
                pending_.push_back(i);
            }
        }
    }
    claimed_.assign(pending_.size(), 0);
    deferred_marked_.assign(pending_.size(), 0);

    const auto wall_start = std::chrono::steady_clock::now();
    const int workers =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(config_.jobs),
                                               pending_.size()));
    if (workers <= 1) {
        worker_loop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int i = 0; i < workers; ++i) {
            pool.emplace_back([this] { worker_loop(); });
        }
        for (auto& thread : pool) {
            thread.join();
        }
    }
    wall_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  wall_start)
                        .count();

    // The workers have joined (happens-before), so outcomes_ is stable: fold
    // the admission-control deferral marks into it (run_unit assigns outcome
    // slots wholesale, so the flag is applied here, not in the scheduler) and
    // mirror the per-status tallies into the process-wide registry.
    for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
        if (deferred_marked_[slot] != 0) {
            outcomes_[pending_[slot]].deferred = true;
        }
    }
    auto& registry = util::metrics();
    for (const auto& outcome : outcomes_) {
        switch (outcome.status) {
        case UnitStatus::ok: registry.counter("fptc_executor_executed_total").add(1); break;
        case UnitStatus::replayed: registry.counter("fptc_executor_replayed_total").add(1); break;
        case UnitStatus::degraded: registry.counter("fptc_executor_degraded_total").add(1); break;
        case UnitStatus::cancelled:
            registry.counter("fptc_executor_cancelled_total").add(1);
            break;
        }
    }

    // Surface the resource-governance counters: a journal record for
    // post-mortems (the replay path only looks up unit keys, so the reserved
    // key is inert on resume) and a stderr line for live runs.  Peak bytes
    // are scheduling-dependent with FPTC_JOBS > 1, so they never go to
    // stdout.  The record reads from the metrics registry — the same
    // instruments FPTC_METRICS exports — after publishing the accountant's
    // current state into it.
    util::publish_membudget_metrics();
    const auto& budget = util::mem_budget();
    if (executed() > 0 || degraded() > 0) {
        // Skipped for campaigns cancelled before any unit committed: a
        // cancelled campaign must leave no journal trace at all.
        journal_.commit(
            "__membudget__",
            {{"peak_bytes",
              std::to_string(registry.gauge("fptc_membudget_peak_bytes").value())},
             {"budget_bytes",
              std::to_string(registry.gauge("fptc_membudget_budget_bytes").value())},
             {"rejections",
              std::to_string(registry.counter("fptc_membudget_rejections_total").value())},
             {"deferred", std::to_string(deferred_units())},
             {"shrunk", std::to_string(shrunk_units())}});
    }
    util::log_info("executor[" + campaign_ + "]: mem " + budget.summary() + " deferred=" +
                   std::to_string(deferred_units()) + " shrunk=" + std::to_string(shrunk_units()));

    // Campaign finished: export trace/metrics/profile so a long-running bench
    // binary leaves artifacts per campaign (the atexit hook re-exports the
    // final cumulative state).
    util::telemetry_flush();
}

std::size_t CampaignExecutor::executed() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.status == UnitStatus::ok ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::resumed() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.status == UnitStatus::replayed ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::degraded() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.status == UnitStatus::degraded ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::retried_units() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.unit_retries > 0 ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::deferred_units() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.deferred ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::shrunk_units() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.shrinks > 0 ? 1 : 0;
    }
    return count;
}

std::string CampaignExecutor::summary() const
{
    std::size_t cancelled = 0;
    for (const auto& outcome : outcomes_) {
        if (outcome.status == UnitStatus::cancelled) {
            ++cancelled;
        }
    }
    std::ostringstream out;
    out << "executor[" << campaign_ << "]: " << units_.size() << " unit(s): " << executed()
        << " executed, " << resumed() << " resumed, " << retried_units() << " retried, "
        << degraded() << " degraded";
    // Resource-governance counters appear only when they fired, so the line
    // is unchanged for unconstrained runs.
    if (shrunk_units() > 0) {
        out << ", " << shrunk_units() << " shrunk";
    }
    if (deferred_units() > 0) {
        out << ", " << deferred_units() << " deferred";
    }
    if (cancelled > 0) {
        out << ", " << cancelled << " cancelled";
    }
    return out.str();
}

std::string CampaignExecutor::timing_summary() const
{
    // Busy time folds per-unit wall time in submission order — the same
    // summation order the old accumulating member used, so the rendered
    // value is bit-identical for a given set of outcomes.
    double busy_seconds = 0.0;
    for (const auto& outcome : outcomes_) {
        busy_seconds += outcome.busy_seconds;
    }
    std::ostringstream out;
    out << "executor[" << campaign_ << "]: " << config_.jobs << " worker(s), wall "
        << wall_seconds_ << "s";
    if (wall_seconds_ > 0.0 && busy_seconds > 0.0) {
        out << ", busy " << busy_seconds << "s, speedup "
            << busy_seconds / wall_seconds_ << "x";
    }
    return out.str();
}

} // namespace fptc::core
