#include "fptc/core/executor.hpp"

#include "fptc/core/guard.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/rng.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>
#include <thread>

namespace fptc::core {

namespace {

/// FNV-1a over the unit key: a stable, platform-independent stream id for
/// the backoff jitter (std::hash is not stable across implementations).
[[nodiscard]] std::uint64_t key_hash(const std::string& key) noexcept
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

ExecutorConfig executor_config_from_env()
{
    ExecutorConfig config;
    config.jobs = static_cast<int>(util::env_int("FPTC_JOBS").value_or(1));
    config.jobs = std::max(1, config.jobs);
    config.unit_timeout_s = util::env_double("FPTC_UNIT_TIMEOUT_S").value_or(0.0);
    config.unit_retries = static_cast<int>(util::env_int("FPTC_UNIT_RETRIES").value_or(2));
    config.unit_retries = std::max(0, config.unit_retries);
    config.backoff_base_ms = util::env_double("FPTC_UNIT_BACKOFF_MS").value_or(50.0);
    return config;
}

double backoff_delay_ms(const ExecutorConfig& config, const std::string& key, int retry)
{
    if (retry < 1 || config.backoff_base_ms <= 0.0) {
        return 0.0;
    }
    double delay = config.backoff_base_ms;
    for (int i = 1; i < retry; ++i) {
        delay *= 2.0;
        if (delay >= config.backoff_max_ms) {
            break;
        }
    }
    util::Rng jitter(util::mix_seed(config.backoff_seed, key_hash(key),
                                    static_cast<std::uint64_t>(retry)));
    delay *= 0.5 + jitter.uniform();
    return std::min(delay, config.backoff_max_ms);
}

ErrorClass classify_exception(const std::exception& error) noexcept
{
    if (const auto* unit_error = dynamic_cast<const UnitError*>(&error)) {
        return unit_error->error_class();
    }
    if (const auto* cancelled = dynamic_cast<const util::CancelledError*>(&error)) {
        return cancelled->kind() == util::CancelKind::timeout ? ErrorClass::timeout
                                                              : ErrorClass::cancelled;
    }
    if (dynamic_cast<const DivergenceError*>(&error) != nullptr) {
        return ErrorClass::fatal;
    }
    if (const auto* io_error = dynamic_cast<const util::IoError*>(&error)) {
        // Durable-I/O failures carry their own hint: ENOSPC / fsync trouble
        // is resource exhaustion (retry, then degrade the cell), a bad path
        // or unexpected syscall error is deterministic.
        return io_error->transient() ? ErrorClass::transient : ErrorClass::fatal;
    }
    if (dynamic_cast<const std::bad_alloc*>(&error) != nullptr) {
        return ErrorClass::transient;
    }
    return ErrorClass::fatal;
}

CampaignExecutor::CampaignExecutor(std::string campaign, ExecutorConfig config)
    : campaign_(std::move(campaign)), config_(config), journal_(campaign_)
{
}

std::size_t CampaignExecutor::submit(std::string key, UnitFn run)
{
    units_.push_back(Unit{std::move(key), std::move(run)});
    return units_.size() - 1;
}

void CampaignExecutor::run_unit(std::size_t index)
{
    const Unit& unit = units_[index];
    UnitOutcome outcome;
    outcome.key = unit.key;
    const auto unit_start = std::chrono::steady_clock::now();

    const int max_attempts = config_.unit_retries + 1;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (campaign_cancel_.cancelled()) {
            outcome.status = UnitStatus::cancelled;
            outcome.final_error = ErrorClass::cancelled;
            outcome.error_chain.push_back("cancelled: campaign cancelled before attempt");
            break;
        }
        if (attempt > 0) {
            const double delay = backoff_delay_ms(config_, unit.key, attempt);
            util::log_info("executor[" + campaign_ + "]: retrying " + unit.key +
                           " (unit retry " + std::to_string(attempt) + "/" +
                           std::to_string(config_.unit_retries) + " after " +
                           std::to_string(static_cast<long>(delay)) + "ms backoff)");
            std::this_thread::sleep_for(
                std::chrono::microseconds(static_cast<std::int64_t>(delay * 1000.0)));
            ++outcome.unit_retries;
        }
        ++outcome.attempts;

        util::CancelToken token;
        token.set_parent(&campaign_cancel_);
        token.set_timeout(config_.unit_timeout_s);
        if (util::fault_injector().inject_unit_stall()) {
            // Simulated hang: the unit's next poll sleeps until the watchdog
            // deadline trips it (capped so a stall without a watchdog ends).
            const auto cap_ms = config_.unit_timeout_s > 0.0
                                    ? static_cast<std::int64_t>(config_.unit_timeout_s * 2000.0) + 1000
                                    : std::int64_t{500};
            token.arm_stall(std::chrono::milliseconds(cap_ms));
        }

        try {
            if (util::fault_injector().inject_unit_transient()) {
                throw UnitError(ErrorClass::transient, "injected transient fault");
            }
            outcome.fields = unit.run(token);
            outcome.status = UnitStatus::ok;
            journal_.commit(unit.key, outcome.fields);
            break;
        } catch (const std::exception& error) {
            const ErrorClass klass = classify_exception(error);
            outcome.error_chain.push_back(std::string(error_class_name(klass)) + ": " +
                                          error.what());
            outcome.final_error = klass;
            if (klass == ErrorClass::transient && attempt + 1 < max_attempts) {
                continue;
            }
            outcome.status = klass == ErrorClass::cancelled ? UnitStatus::cancelled
                                                            : UnitStatus::degraded;
            util::log_info("executor[" + campaign_ + "]: unit " + unit.key + " " +
                           (outcome.status == UnitStatus::cancelled ? "cancelled"
                                                                    : "degraded") +
                           " after " + std::to_string(outcome.attempts) + " attempt(s): " +
                           outcome.error_chain.back());
            break;
        }
    }
    outcome.busy_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - unit_start).count();
    outcomes_[index] = std::move(outcome);
}

void CampaignExecutor::worker_loop()
{
    while (true) {
        const std::size_t slot = next_pending_.fetch_add(1, std::memory_order_relaxed);
        if (slot >= pending_.size()) {
            return;
        }
        run_unit(pending_[slot]);
    }
}

void CampaignExecutor::run_all()
{
    if (ran_) {
        throw std::logic_error("CampaignExecutor::run_all: already ran");
    }
    ran_ = true;
    outcomes_.assign(units_.size(), UnitOutcome{});

    // Replay journal-completed units up front; only the rest hit the pool.
    for (std::size_t i = 0; i < units_.size(); ++i) {
        if (auto fields = journal_.try_replay(units_[i].key)) {
            outcomes_[i].key = units_[i].key;
            outcomes_[i].status = UnitStatus::replayed;
            outcomes_[i].fields = *std::move(fields);
        } else {
            pending_.push_back(i);
        }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const int workers =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(config_.jobs),
                                               pending_.size()));
    if (workers <= 1) {
        worker_loop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int i = 0; i < workers; ++i) {
            pool.emplace_back([this] { worker_loop(); });
        }
        for (auto& thread : pool) {
            thread.join();
        }
    }
    wall_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  wall_start)
                        .count();

    for (const auto& outcome : outcomes_) {
        switch (outcome.status) {
        case UnitStatus::ok: ++executed_; break;
        case UnitStatus::replayed: ++resumed_; break;
        case UnitStatus::degraded: ++degraded_count_; break;
        case UnitStatus::cancelled: break;
        }
        if (outcome.unit_retries > 0) {
            ++retried_units_;
        }
        busy_seconds_ += outcome.busy_seconds;
    }
}

std::string CampaignExecutor::summary() const
{
    std::size_t cancelled = 0;
    for (const auto& outcome : outcomes_) {
        if (outcome.status == UnitStatus::cancelled) {
            ++cancelled;
        }
    }
    std::ostringstream out;
    out << "executor[" << campaign_ << "]: " << units_.size() << " unit(s): " << executed_
        << " executed, " << resumed_ << " resumed, " << retried_units_ << " retried, "
        << degraded_count_ << " degraded";
    if (cancelled > 0) {
        out << ", " << cancelled << " cancelled";
    }
    return out.str();
}

std::string CampaignExecutor::timing_summary() const
{
    std::ostringstream out;
    out << "executor[" << campaign_ << "]: " << config_.jobs << " worker(s), wall "
        << wall_seconds_ << "s";
    if (wall_seconds_ > 0.0 && busy_seconds_ > 0.0) {
        out << ", busy " << busy_seconds_ << "s, speedup "
            << busy_seconds_ / wall_seconds_ << "x";
    }
    return out.str();
}

} // namespace fptc::core
