#include "fptc/core/executor.hpp"

#include "fptc/core/guard.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/shutdown.hpp"
#include "fptc/util/telemetry.hpp"
#include "fptc/util/telemetry_merge.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fptc::core {

namespace {

/// FNV-1a over the unit key: a stable, platform-independent stream id for
/// the backoff jitter (std::hash is not stable across implementations).
[[nodiscard]] std::uint64_t key_hash(const std::string& key) noexcept
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/// Inverse of error_class_name, for restoring journaled degradations.
[[nodiscard]] ErrorClass error_class_from_name(const std::string& name) noexcept
{
    if (name == "transient") {
        return ErrorClass::transient;
    }
    if (name == "timeout") {
        return ErrorClass::timeout;
    }
    if (name == "cancelled") {
        return ErrorClass::cancelled;
    }
    return ErrorClass::fatal;
}

} // namespace

ExecutorConfig executor_config_from_env()
{
    ExecutorConfig config;
    config.jobs = static_cast<int>(util::env_int("FPTC_JOBS").value_or(1));
    config.jobs = std::max(1, config.jobs);
    config.unit_timeout_s = util::env_double("FPTC_UNIT_TIMEOUT_S").value_or(0.0);
    config.unit_retries = static_cast<int>(util::env_int("FPTC_UNIT_RETRIES").value_or(2));
    config.unit_retries = std::max(0, config.unit_retries);
    config.backoff_base_ms = util::env_double("FPTC_UNIT_BACKOFF_MS").value_or(50.0);
    config.mem_budget_bytes =
        static_cast<std::size_t>(util::env_int("FPTC_MEM_BUDGET_MB").value_or(0)) * 1024 * 1024;
    config.shards = std::max(0, static_cast<int>(util::env_int("FPTC_SHARDS").value_or(0)));
    config.shard_id = static_cast<int>(util::env_int("FPTC_SHARD_ID").value_or(-1));
    config.lease_ttl_s = util::env_double("FPTC_LEASE_TTL_S").value_or(30.0);
    return config;
}

std::size_t estimate_unit_bytes(const FootprintEstimate& estimate)
{
    const std::size_t d = nn::effective_input_dim(estimate.resolution);
    const std::size_t channels = std::max<std::size_t>(1, estimate.channels);
    const std::size_t pixel_bytes = channels * d * d * sizeof(float);
    // Stored sample sets (train + eval) at the effective input dimension.
    const std::size_t stored = (estimate.samples + estimate.eval_samples) * pixel_bytes;
    // Two native-resolution grids alive while a flow rasterizes (the flowpic
    // plus its pooled copy; directional sets hold an up/down pair).
    const std::size_t rasterize = 2 * estimate.resolution * estimate.resolution * sizeof(float);
    // Per-step tensor traffic: input batch plus activations and gradients,
    // a conservative constant multiple of the batch tensor.
    const std::size_t batch_traffic = std::max<std::size_t>(1, estimate.batch) * pixel_bytes * 12;
    return stored + rasterize + batch_traffic;
}

double backoff_delay_ms(const ExecutorConfig& config, const std::string& key, int retry)
{
    if (retry < 1 || config.backoff_base_ms <= 0.0) {
        return 0.0;
    }
    double delay = config.backoff_base_ms;
    for (int i = 1; i < retry; ++i) {
        delay *= 2.0;
        if (delay >= config.backoff_max_ms) {
            break;
        }
    }
    util::Rng jitter(util::mix_seed(config.backoff_seed, key_hash(key),
                                    static_cast<std::uint64_t>(retry)));
    delay *= 0.5 + jitter.uniform();
    return std::min(delay, config.backoff_max_ms);
}

ErrorClass classify_exception(const std::exception& error) noexcept
{
    if (const auto* unit_error = dynamic_cast<const UnitError*>(&error)) {
        return unit_error->error_class();
    }
    if (const auto* cancelled = dynamic_cast<const util::CancelledError*>(&error)) {
        return cancelled->kind() == util::CancelKind::timeout ? ErrorClass::timeout
                                                              : ErrorClass::cancelled;
    }
    if (dynamic_cast<const DivergenceError*>(&error) != nullptr) {
        return ErrorClass::fatal;
    }
    if (const auto* io_error = dynamic_cast<const util::IoError*>(&error)) {
        // Durable-I/O failures carry their own hint: ENOSPC / fsync trouble
        // is resource exhaustion (retry, then degrade the cell), a bad path
        // or unexpected syscall error is deterministic.
        return io_error->transient() ? ErrorClass::transient : ErrorClass::fatal;
    }
    if (const auto* budget = dynamic_cast<const util::BudgetExceeded*>(&error)) {
        // Memory-budget refusals carry the same kind of hint: pressure from
        // concurrent units passes, a structurally oversized unit does not.
        return budget->transient() ? ErrorClass::transient : ErrorClass::fatal;
    }
    if (dynamic_cast<const std::bad_alloc*>(&error) != nullptr) {
        return ErrorClass::transient;
    }
    return ErrorClass::fatal;
}

CampaignExecutor::CampaignExecutor(std::string campaign, ExecutorConfig config)
    : campaign_(std::move(campaign)), config_(config), journal_(campaign_, config.shard_id)
{
    // Resolve and validate the telemetry sinks now, on the campaign's main
    // thread: an empty or unwritable FPTC_TRACE / FPTC_METRICS target throws
    // util::EnvError here, before any unit has sunk CPU time.
    util::telemetry_init();
    if ((config_.shards >= 1 || config_.shard_id >= 0) && !journal_.enabled()) {
        // The journal family *is* the coordination medium: without it the
        // fleet has no claim registry and no way to merge results.
        throw util::EnvError("FPTC_SHARDS/FPTC_SHARD_ID require FPTC_JOURNAL to be set");
    }
    util::install_shutdown_handlers();
    // Scavenge crash debris (orphan DurableFile temps of dead incarnations)
    // from the directories this campaign will write to, before anything new
    // lands there.
    if (journal_.enabled()) {
        util::scavenge_orphan_temps(util::parent_dir_of(journal_.base_path()));
    }
    if (const char* artifacts = std::getenv("FPTC_ARTIFACTS_DIR");
        artifacts != nullptr && *artifacts != '\0') {
        util::scavenge_orphan_temps(artifacts);
    }
}

std::size_t CampaignExecutor::submit(std::string key, UnitFn run, std::size_t estimated_bytes)
{
    units_.push_back(Unit{std::move(key), std::move(run), estimated_bytes});
    return units_.size() - 1;
}

void CampaignExecutor::run_unit(std::size_t index)
{
    const Unit& unit = units_[index];
    FPTC_TRACE_SPAN("unit", {{"campaign", campaign_.c_str()}, {"key", unit.key.c_str()}});
    UnitOutcome outcome;
    outcome.key = unit.key;
    const auto unit_start = std::chrono::steady_clock::now();

    const int max_attempts = config_.unit_retries + 1;
    int shrink = 0;
    bool shrink_retry_used = false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        poll_shutdown();
        if (campaign_cancel_.cancelled()) {
            outcome.status = UnitStatus::cancelled;
            outcome.final_error = ErrorClass::cancelled;
            outcome.error_chain.push_back("cancelled: campaign cancelled before attempt");
            break;
        }
        if (attempt > 0) {
            FPTC_TRACE_SPAN("backoff");
            util::metrics().counter("fptc_executor_retries_total").add(1);
            const double delay = backoff_delay_ms(config_, unit.key, attempt);
            util::log_info("executor[" + campaign_ + "]: retrying " + unit.key +
                           " (unit retry " + std::to_string(attempt) + "/" +
                           std::to_string(config_.unit_retries) + " after " +
                           std::to_string(static_cast<long>(delay)) + "ms backoff)");
            std::this_thread::sleep_for(
                std::chrono::microseconds(static_cast<std::int64_t>(delay * 1000.0)));
            ++outcome.unit_retries;
        }
        ++outcome.attempts;
        FPTC_TRACE_SPAN("attempt");

        util::CancelToken token;
        token.set_parent(&campaign_cancel_);
        token.set_timeout(config_.unit_timeout_s);
        if (util::fault_injector().inject_unit_stall()) {
            // Simulated hang: the unit's next poll sleeps until the watchdog
            // deadline trips it (capped so a stall without a watchdog ends).
            const auto cap_ms = config_.unit_timeout_s > 0.0
                                    ? static_cast<std::int64_t>(config_.unit_timeout_s * 2000.0) + 1000
                                    : std::int64_t{500};
            token.arm_stall(std::chrono::milliseconds(cap_ms));
        }
        // Every attempt gets a fresh allocation-fault byte scope, so the
        // FPTC_FAULT_ALLOC_FAIL_AFTER_MB refusal point depends only on this
        // unit's own charges — deterministic for any FPTC_JOBS.
        util::fault_injector().begin_alloc_scope();

        try {
            if (util::fault_injector().inject_unit_transient()) {
                throw UnitError(ErrorClass::transient, "injected transient fault");
            }
            if (shrink == 0 && util::fault_injector().inject_unit_alloc_fail(index)) {
                throw util::BudgetExceeded("fault-injected unit " + unit.key,
                                           unit.estimated_bytes, 0);
            }
            const UnitContext context{token, shrink};
            outcome.fields = unit.run(context);
            outcome.status = UnitStatus::ok;
            if (util::fault_injector().inject_shard_kill(config_.shard_id)) {
                // FPTC_FAULT_KILL_SHARD: die *after* the work but *before*
                // the commit — the worst crash point.  The lease stays held,
                // the finished result is lost, and a sibling must wait out
                // the TTL and redo the unit from scratch.
                util::log_info("executor[" + campaign_ + "]: injected shard kill at " +
                               unit.key);
                ::raise(SIGKILL);
            }
            journal_.commit(unit.key, outcome.fields);
            break;
        } catch (const std::exception& error) {
            const ErrorClass klass = classify_exception(error);
            outcome.error_chain.push_back(std::string(error_class_name(klass)) + ": " +
                                          error.what());
            outcome.final_error = klass;
            const bool budget_refusal =
                dynamic_cast<const util::BudgetExceeded*>(&error) != nullptr;
            if (budget_refusal && !shrink_retry_used && klass == ErrorClass::transient) {
                // OOM-graceful path: one immediate re-execution at half batch
                // size.  It does not consume the transient retry budget —
                // halving the footprint is the mitigation, not waiting.
                shrink_retry_used = true;
                shrink = 1;
                outcome.shrinks = 1;
                util::metrics().counter("fptc_executor_shrunk_total").add(1);
                util::log_info("executor[" + campaign_ + "]: unit " + unit.key +
                               " hit the memory budget; retrying at half batch size");
                --attempt;
                continue;
            }
            if (klass == ErrorClass::transient && attempt + 1 < max_attempts) {
                continue;
            }
            outcome.status = klass == ErrorClass::cancelled ? UnitStatus::cancelled
                                                            : UnitStatus::degraded;
            util::log_info("executor[" + campaign_ + "]: unit " + unit.key + " " +
                           (outcome.status == UnitStatus::cancelled ? "cancelled"
                                                                    : "degraded") +
                           " after " + std::to_string(outcome.attempts) + " attempt(s): " +
                           outcome.error_chain.back());
            break;
        }
    }
    if (is_shard_worker() && outcome.status == UnitStatus::degraded) {
        // Journal the terminal failure so the rest of the fleet stops
        // re-claiming this unit; the reserved __status__ field makes every
        // later replay (sibling, coordinator, sequential resume) restore a
        // degraded outcome instead of treating the record as metrics.
        std::string chain;
        for (const auto& entry : outcome.error_chain) {
            chain += chain.empty() ? entry : "\n" + entry;
        }
        journal_.commit(unit.key,
                        {{util::kStatusField, util::kDegradedStatus},
                         {util::kErrorField, chain},
                         {util::kFinalErrorField, error_class_name(outcome.final_error)}});
    }
    outcome.busy_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - unit_start).count();
    outcomes_[index] = std::move(outcome);
}

void CampaignExecutor::poll_shutdown() const noexcept
{
    if (util::shutdown_requested() && !campaign_cancel_.cancelled()) {
        campaign_cancel_.cancel(util::CancelKind::cancelled);
    }
}

void CampaignExecutor::worker_loop()
{
    std::unique_lock<std::mutex> lock(sched_mutex_);
    while (true) {
        poll_shutdown();
        const std::size_t budget = config_.mem_budget_bytes;
        std::size_t pick = pending_.size();
        bool any_unclaimed = false;
        for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
            if (claimed_[slot] != 0) {
                continue;
            }
            any_unclaimed = true;
            const std::size_t estimate = units_[pending_[slot]].estimated_bytes;
            const bool fits = budget == 0 || estimate == 0 ||
                              (est_outstanding_ < budget && estimate <= budget - est_outstanding_);
            // Deadlock-free admission: with nothing running there is nothing
            // to wait for, so even an over-budget estimate is admitted (the
            // accountant still enforces the hard cap mid-unit).
            if (fits || running_ == 0) {
                pick = slot;
                break;
            }
            if (deferred_marked_[slot] == 0) {
                deferred_marked_[slot] = 1;
                util::metrics().counter("fptc_executor_deferred_total").add(1);
                util::log_info("executor[" + campaign_ + "]: deferring " +
                               units_[pending_[slot]].key + " (estimate " +
                               std::to_string(estimate) + " B over remaining budget)");
            }
        }
        if (!any_unclaimed) {
            return;
        }
        if (pick == pending_.size()) {
            // Nothing admissible right now; park until a unit completes.
            // Bounded wait: a latched shutdown signal must be noticed even
            // when no completion ever arrives to ring the cv.
            FPTC_TRACE_SPAN("admission_wait");
            sched_cv_.wait_for(lock, std::chrono::milliseconds(250));
            continue;
        }
        claimed_[pick] = 1;
        ++running_;
        const std::size_t estimate = units_[pending_[pick]].estimated_bytes;
        est_outstanding_ += estimate;
        lock.unlock();
        run_unit(pending_[pick]);
        lock.lock();
        --running_;
        est_outstanding_ -= estimate;
        sched_cv_.notify_all();
    }
}

void CampaignExecutor::outcome_from_record(UnitOutcome& outcome, const std::string& key,
                                           std::map<std::string, std::string> fields)
{
    outcome.key = key;
    const auto status = fields.find(util::kStatusField);
    if (status != fields.end() && status->second == util::kDegradedStatus) {
        // A journaled terminal failure: restore the degraded outcome (error
        // chain and final class included) so a resumed or merged campaign
        // renders the same †-marked cells as the run that degraded it.
        outcome.status = UnitStatus::degraded;
        outcome.final_error = error_class_from_name(fields[util::kFinalErrorField]);
        const std::string& chain = fields[util::kErrorField];
        std::size_t start = 0;
        while (start < chain.size()) {
            const auto newline = chain.find('\n', start);
            const auto end = newline == std::string::npos ? chain.size() : newline;
            outcome.error_chain.push_back(chain.substr(start, end - start));
            start = end + 1;
        }
        return;
    }
    outcome.status = UnitStatus::replayed;
    outcome.fields = std::move(fields);
}

void CampaignExecutor::replay_pending()
{
    std::vector<std::size_t> leftover;
    for (const std::size_t index : pending_) {
        if (auto fields = journal_.try_replay(units_[index].key)) {
            outcome_from_record(outcomes_[index], units_[index].key, *std::move(fields));
        } else {
            leftover.push_back(index);
        }
    }
    pending_ = std::move(leftover);
    claimed_.assign(pending_.size(), 0);
    deferred_marked_.assign(pending_.size(), 0);
    foreign_until_ms_.assign(pending_.size(), 0);
}

void CampaignExecutor::worker_loop_sharded()
{
    constexpr auto kPark = std::chrono::milliseconds(250);
    std::unique_lock<std::mutex> lock(sched_mutex_);
    while (true) {
        poll_shutdown();
        const bool cancelled = campaign_cancel_.cancelled();
        const std::size_t budget = config_.mem_budget_bytes;
        const std::int64_t now = util::now_realtime_ms();
        std::size_t pick = pending_.size();
        bool any_unclaimed = false;
        for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
            if (claimed_[slot] != 0) {
                continue;
            }
            any_unclaimed = true;
            // Recently seen under an unexpired foreign lease: leave it
            // parked instead of re-hitting the lease file every pass.
            // Cancellation overrides the parking — cancelled slots resolve
            // locally without touching a lease at all.
            if (!cancelled && foreign_until_ms_[slot] > now) {
                continue;
            }
            const std::size_t estimate = units_[pending_[slot]].estimated_bytes;
            const bool fits = budget == 0 || estimate == 0 ||
                              (est_outstanding_ < budget && estimate <= budget - est_outstanding_);
            if (fits || running_ == 0) {
                pick = slot;
                break;
            }
            if (deferred_marked_[slot] == 0) {
                deferred_marked_[slot] = 1;
                util::metrics().counter("fptc_executor_deferred_total").add(1);
                util::log_info("executor[" + campaign_ + "]: deferring " +
                               units_[pending_[slot]].key + " (estimate " +
                               std::to_string(estimate) + " B over remaining budget)");
            }
        }
        if (!any_unclaimed) {
            return;
        }
        if (pick == pending_.size()) {
            // Everything left is inadmissible or foreign-leased; park until
            // a completion (or a lease expiry window) changes the picture.
            FPTC_TRACE_SPAN("admission_wait");
            sched_cv_.wait_for(lock, kPark);
            continue;
        }
        claimed_[pick] = 1;
        ++running_;
        const std::size_t index = pending_[pick];
        const std::size_t estimate = units_[index].estimated_bytes;
        est_outstanding_ += estimate;
        lock.unlock();

        const std::string& key = units_[index].key;
        const std::string lease_key = journal_.full_key(key);
        bool resolved = false;
        if (cancelled) {
            run_unit(index);  // marks the unit cancelled without journaling
            resolved = true;
        }
        if (!resolved) {
            // Adopt a result some other family member already committed —
            // cheaper than claiming, and the only way to resolve a slot a
            // live sibling currently owns.
            const std::lock_guard<std::mutex> lease_lock(lease_mutex_);
            sibling_journals_->maybe_reload(500);
            if (auto fields = sibling_journals_->find(lease_key)) {
                UnitOutcome outcome;
                outcome_from_record(outcome, key, *std::move(fields));
                outcomes_[index] = std::move(outcome);
                util::metrics().counter("fptc_shard_units_adopted_total").add(1);
                resolved = true;
            }
        }
        if (!resolved) {
            bool lease_held = false;
            {
                const std::lock_guard<std::mutex> lease_lock(lease_mutex_);
                lease_held = lease_store_->try_claim(lease_key);
                if (lease_held) {
                    inflight_keys_.push_back(lease_key);
                }
            }
            if (lease_held) {
                run_unit(index);
                const std::lock_guard<std::mutex> lease_lock(lease_mutex_);
                lease_store_->release(lease_key);
                inflight_keys_.erase(
                    std::remove(inflight_keys_.begin(), inflight_keys_.end(), lease_key),
                    inflight_keys_.end());
                resolved = true;
            }
        }

        lock.lock();
        --running_;
        est_outstanding_ -= estimate;
        if (!resolved) {
            // An unexpired foreign lease holds the unit: un-claim the slot
            // and park it for half a TTL (capped at 1s) before looking
            // again — by then the owner has either committed (adopt) or
            // died (steal).
            claimed_[pick] = 0;
            foreign_until_ms_[pick] =
                util::now_realtime_ms() +
                std::min<std::int64_t>(
                    static_cast<std::int64_t>(config_.lease_ttl_s * 500.0), 1000);
        }
        sched_cv_.notify_all();
    }
}

void CampaignExecutor::start_heartbeat_thread()
{
    heartbeat_stop_ = false;
    const auto interval = std::chrono::milliseconds(std::max<std::int64_t>(
        50, static_cast<std::int64_t>(config_.lease_ttl_s * 1000.0 / 3.0)));
    heartbeat_thread_ = std::thread([this, interval] {
        std::unique_lock<std::mutex> lock(lease_mutex_);
        while (!heartbeat_stop_) {
            heartbeat_cv_.wait_for(lock, interval);
            if (heartbeat_stop_) {
                return;
            }
            if (!inflight_keys_.empty()) {
                lease_store_->heartbeat(inflight_keys_);
            }
        }
    });
}

void CampaignExecutor::stop_heartbeat_thread()
{
    {
        const std::lock_guard<std::mutex> lock(lease_mutex_);
        heartbeat_stop_ = true;
    }
    heartbeat_cv_.notify_all();
    if (heartbeat_thread_.joinable()) {
        heartbeat_thread_.join();
    }
}

void CampaignExecutor::run_shard_coordinator()
{
    const int shards = config_.shards;
    const std::string base = journal_.base_path();
    const int worker_jobs = std::max(1, config_.jobs / shards);
    util::log_info("executor[" + campaign_ + "]: coordinating " + std::to_string(shards) +
                   " shard worker(s) over " + std::to_string(pending_.size()) +
                   " pending unit(s), " + std::to_string(worker_jobs) + " job(s) each");
    util::metrics().counter("fptc_shard_workers_spawned_total").add(shards);
    (void)util::metrics().counter("fptc_shard_worker_failures_total");
    const char* trace = std::getenv("FPTC_TRACE");
    const char* metrics_path = std::getenv("FPTC_METRICS");

    // Fork/exec the fleet.  This runs before the coordinator starts any
    // worker thread, so the fork happens in a single-threaded process.
    std::vector<int> pids;
    pids.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
        std::vector<util::EnvVar> env;
        env.push_back({"FPTC_SHARD_ID", std::to_string(i), false});
        env.push_back({"FPTC_JOBS", std::to_string(worker_jobs), false});
        // Workers own no campaign artifacts: tables and CSVs come from the
        // coordinator's aggregation pass over the merged journal.
        env.push_back({"FPTC_ARTIFACTS_DIR", "", true});
        if (trace != nullptr && *trace != '\0') {
            env.push_back({"FPTC_TRACE", std::string(trace) + ".shard" + std::to_string(i),
                           false});
        }
        if (metrics_path != nullptr && *metrics_path != '\0') {
            env.push_back({"FPTC_METRICS",
                           std::string(metrics_path) + ".shard" + std::to_string(i), false});
        }
        pids.push_back(util::spawn_shard_worker(
            env, util::shard_journal_path(base, i) + ".out"));
    }

    // Reap the fleet.  A latched shutdown signal is forwarded as SIGTERM so
    // workers flush and exit through their own cooperative path.
    std::vector<char> reaped(pids.size(), 0);
    std::size_t live = pids.size();
    std::size_t failures = 0;
    bool term_forwarded = false;
    while (live > 0) {
        if (util::shutdown_requested() && !term_forwarded) {
            term_forwarded = true;
            util::log_info("executor[" + campaign_ +
                           "]: shutdown requested; forwarding SIGTERM to the shard fleet");
            for (std::size_t i = 0; i < pids.size(); ++i) {
                if (reaped[i] == 0) {
                    ::kill(static_cast<pid_t>(pids[i]), SIGTERM);
                }
            }
        }
        bool progressed = false;
        for (std::size_t i = 0; i < pids.size(); ++i) {
            if (reaped[i] != 0) {
                continue;
            }
            int status = 0;
            const pid_t result = ::waitpid(static_cast<pid_t>(pids[i]), &status, WNOHANG);
            if (result == 0) {
                continue;
            }
            reaped[i] = 1;
            --live;
            progressed = true;
            if (result < 0) {
                continue;  // ECHILD: already reaped elsewhere; nothing to log
            }
            if (WIFSIGNALED(status)) {
                ++failures;
                util::metrics().counter("fptc_shard_worker_failures_total").add(1);
                util::log_info("executor[" + campaign_ + "]: shard " + std::to_string(i) +
                               " (pid " + std::to_string(pids[i]) + ") killed by signal " +
                               std::to_string(WTERMSIG(status)));
            } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
                ++failures;
                util::metrics().counter("fptc_shard_worker_failures_total").add(1);
                util::log_info("executor[" + campaign_ + "]: shard " + std::to_string(i) +
                               " exited with status " + std::to_string(WEXITSTATUS(status)));
            } else {
                util::log_debug("executor[" + campaign_ + "]: shard " + std::to_string(i) +
                                " finished cleanly");
            }
        }
        if (!progressed && live > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }

    // Fold the family back together: shard journals into the base journal
    // (removing the absorbed shard/lease files — every worker has exited),
    // per-shard telemetry into `.merged` artifacts.  The merged telemetry
    // goes to new paths because this process's own atexit flush will still
    // rewrite the plain FPTC_TRACE / FPTC_METRICS files.
    journal_.absorb_shard_journals(/*remove_shards=*/true);
    if (trace != nullptr && *trace != '\0') {
        std::vector<std::string> inputs;
        for (int i = 0; i < shards; ++i) {
            inputs.push_back(std::string(trace) + ".shard" + std::to_string(i));
        }
        util::merge_trace_files(inputs, std::string(trace) + ".merged");
    }
    if (metrics_path != nullptr && *metrics_path != '\0') {
        std::vector<std::string> inputs;
        for (int i = 0; i < shards; ++i) {
            inputs.push_back(std::string(metrics_path) + ".shard" + std::to_string(i) +
                             ".prom");
        }
        util::merge_prometheus_files(inputs, std::string(metrics_path) + ".merged.prom");
    }
    if (failures > 0) {
        util::log_info("executor[" + campaign_ + "]: " + std::to_string(failures) +
                       " shard worker(s) died; surviving shards stole their leases and any "
                       "remainder runs locally");
    }
}

void CampaignExecutor::run_all()
{
    if (ran_) {
        throw std::logic_error("CampaignExecutor::run_all: already ran");
    }
    ran_ = true;
    outcomes_.assign(units_.size(), UnitOutcome{});
    util::metrics().counter("fptc_executor_units_total").add(units_.size());
    // Touch the event-site counters so a clean campaign still exports the
    // full executor instrument set at zero.
    for (const char* name :
         {"fptc_executor_executed_total", "fptc_executor_replayed_total",
          "fptc_executor_retries_total", "fptc_executor_deferred_total",
          "fptc_executor_shrunk_total", "fptc_executor_degraded_total",
          "fptc_executor_cancelled_total", "fptc_membudget_rejections_total"}) {
        (void)util::metrics().counter(name);
    }

    // Replay journal-completed units up front; only the rest hit the pool
    // (in worker mode the journal already holds the union of the family's
    // records, so fleet-wide progress replays here too).
    {
        FPTC_TRACE_SPAN("journal_replay");
        pending_.clear();
        for (std::size_t i = 0; i < units_.size(); ++i) {
            pending_.push_back(i);
        }
        replay_pending();
    }

    if (is_shard_coordinator() && !pending_.empty()) {
        // Coordinator: the fleet executes the pending units; afterwards the
        // merged base journal replays their results here.  Anything still
        // unresolved (every shard holding it died) falls through to the
        // local pool below — completion never depends on fleet luck.
        run_shard_coordinator();
        {
            FPTC_TRACE_SPAN("journal_replay");
            replay_pending();
        }
        if (!pending_.empty()) {
            util::log_info("executor[" + campaign_ + "]: " + std::to_string(pending_.size()) +
                           " unit(s) left unfinished by the shard fleet; executing locally");
        }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const int workers =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(config_.jobs),
                                               pending_.size()));
    if (is_shard_worker()) {
        lease_store_.emplace(journal_.base_path(), config_.shard_id, config_.lease_ttl_s);
        sibling_journals_.emplace(journal_.base_path(), config_.shard_id);
        (void)util::metrics().counter("fptc_shard_units_stolen_total");
        (void)util::metrics().counter("fptc_shard_units_adopted_total");
        start_heartbeat_thread();
        if (workers <= 1) {
            worker_loop_sharded();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(static_cast<std::size_t>(workers));
            for (int i = 0; i < workers; ++i) {
                pool.emplace_back([this] { worker_loop_sharded(); });
            }
            for (auto& thread : pool) {
                thread.join();
            }
        }
        stop_heartbeat_thread();
        util::metrics()
            .counter("fptc_shard_units_stolen_total")
            .add(static_cast<std::int64_t>(lease_store_->stolen()));
    } else if (workers <= 1) {
        worker_loop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int i = 0; i < workers; ++i) {
            pool.emplace_back([this] { worker_loop(); });
        }
        for (auto& thread : pool) {
            thread.join();
        }
    }
    wall_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  wall_start)
                        .count();

    // The workers have joined (happens-before), so outcomes_ is stable: fold
    // the admission-control deferral marks into it (run_unit assigns outcome
    // slots wholesale, so the flag is applied here, not in the scheduler) and
    // mirror the per-status tallies into the process-wide registry.
    for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
        if (deferred_marked_[slot] != 0) {
            outcomes_[pending_[slot]].deferred = true;
        }
    }
    auto& registry = util::metrics();
    for (const auto& outcome : outcomes_) {
        switch (outcome.status) {
        case UnitStatus::ok: registry.counter("fptc_executor_executed_total").add(1); break;
        case UnitStatus::replayed: registry.counter("fptc_executor_replayed_total").add(1); break;
        case UnitStatus::degraded: registry.counter("fptc_executor_degraded_total").add(1); break;
        case UnitStatus::cancelled:
            registry.counter("fptc_executor_cancelled_total").add(1);
            break;
        }
    }

    // Surface the resource-governance counters: a journal record for
    // post-mortems (the replay path only looks up unit keys, so the reserved
    // key is inert on resume) and a stderr line for live runs.  Peak bytes
    // are scheduling-dependent with FPTC_JOBS > 1, so they never go to
    // stdout.  The record reads from the metrics registry — the same
    // instruments FPTC_METRICS exports — after publishing the accountant's
    // current state into it.
    util::publish_membudget_metrics();
    const auto& budget = util::mem_budget();
    if (executed() > 0 || degraded() > 0) {
        // Skipped for campaigns cancelled before any unit committed: a
        // cancelled campaign must leave no journal trace at all.
        journal_.commit(
            "__membudget__",
            {{"peak_bytes",
              std::to_string(registry.gauge("fptc_membudget_peak_bytes").value())},
             {"budget_bytes",
              std::to_string(registry.gauge("fptc_membudget_budget_bytes").value())},
             {"rejections",
              std::to_string(registry.counter("fptc_membudget_rejections_total").value())},
             {"deferred", std::to_string(deferred_units())},
             {"shrunk", std::to_string(shrunk_units())}});
    }
    util::log_info("executor[" + campaign_ + "]: mem " + budget.summary() + " deferred=" +
                   std::to_string(deferred_units()) + " shrunk=" + std::to_string(shrunk_units()));

    // Cooperative shutdown: leave a final journal record describing how far
    // the campaign got, flush every telemetry sink, and exit with the
    // conventional status — callers never see half-aggregated tables.
    const int shutdown_signum = util::shutdown_signal();
    if (shutdown_signum != 0) {
        journal_.commit("__shutdown__",
                        {{"signal", std::to_string(shutdown_signum)},
                         {"completed", std::to_string(executed() + resumed())},
                         {"degraded", std::to_string(degraded())},
                         {"units", std::to_string(units_.size())}});
    }

    // Campaign finished: export trace/metrics/profile so a long-running bench
    // binary leaves artifacts per campaign (the atexit hook re-exports the
    // final cumulative state).
    util::telemetry_flush();

    if (shutdown_signum != 0) {
        util::log_info("executor[" + campaign_ + "]: shutdown on signal " +
                       std::to_string(shutdown_signum) + "; journal and telemetry flushed, "
                       "exiting " +
                       std::to_string(util::shutdown_exit_code(shutdown_signum)));
        std::exit(util::shutdown_exit_code(shutdown_signum));
    }
}

std::size_t CampaignExecutor::executed() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.status == UnitStatus::ok ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::resumed() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.status == UnitStatus::replayed ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::degraded() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.status == UnitStatus::degraded ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::retried_units() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.unit_retries > 0 ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::deferred_units() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.deferred ? 1 : 0;
    }
    return count;
}

std::size_t CampaignExecutor::shrunk_units() const noexcept
{
    std::size_t count = 0;
    for (const auto& outcome : outcomes_) {
        count += outcome.shrinks > 0 ? 1 : 0;
    }
    return count;
}

std::string CampaignExecutor::summary() const
{
    std::size_t cancelled = 0;
    for (const auto& outcome : outcomes_) {
        if (outcome.status == UnitStatus::cancelled) {
            ++cancelled;
        }
    }
    std::ostringstream out;
    out << "executor[" << campaign_ << "]: " << units_.size() << " unit(s): " << executed()
        << " executed, " << resumed() << " resumed, " << retried_units() << " retried, "
        << degraded() << " degraded";
    // Resource-governance counters appear only when they fired, so the line
    // is unchanged for unconstrained runs.
    if (shrunk_units() > 0) {
        out << ", " << shrunk_units() << " shrunk";
    }
    if (deferred_units() > 0) {
        out << ", " << deferred_units() << " deferred";
    }
    if (cancelled > 0) {
        out << ", " << cancelled << " cancelled";
    }
    return out.str();
}

std::string CampaignExecutor::timing_summary() const
{
    // Busy time folds per-unit wall time in submission order — the same
    // summation order the old accumulating member used, so the rendered
    // value is bit-identical for a given set of outcomes.
    double busy_seconds = 0.0;
    for (const auto& outcome : outcomes_) {
        busy_seconds += outcome.busy_seconds;
    }
    std::ostringstream out;
    out << "executor[" << campaign_ << "]: " << config_.jobs << " worker(s), wall "
        << wall_seconds_ << "s";
    if (wall_seconds_ > 0.0 && busy_seconds > 0.0) {
        out << ", busy " << busy_seconds << "s, speedup "
            << busy_seconds / wall_seconds_ << "x";
    }
    return out.str();
}

} // namespace fptc::core
