#include "fptc/core/simclr.hpp"

#include "fptc/nn/loss.hpp"
#include "fptc/nn/optimizer.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <stdexcept>

namespace fptc::core {

namespace {

/// Shared pre-training loop for SimCLR (self-supervised, NT-Xent) and SupCon
/// (supervised, multi-positive).  The only difference is the loss applied to
/// the projected double batch.
[[nodiscard]] SimClrResult pretrain_contrastive(nn::SimClrNetwork& network,
                                                std::span<const flow::Flow> flows,
                                                const augment::ViewPairGenerator& views,
                                                const SimClrConfig& config, bool supervised)
{
    if (flows.size() < 2) {
        throw std::invalid_argument("pretrain_contrastive: need at least 2 flows");
    }
    util::Rng rng(config.seed);
    auto optimizer = std::make_unique<nn::Adam>(network.parameters(), config.learning_rate);
    DivergenceGuard guard(network.parameters(), config.guard);

    const std::size_t dim = nn::effective_input_dim(views.config().resolution);
    const std::size_t plane = dim * dim;

    std::vector<std::size_t> order(flows.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    SimClrResult result;
    double best_top5 = 0.0;
    int epochs_since_improvement = 0;

    for (int epoch = 0; epoch < config.max_epochs;) {
        FPTC_TRACE_SPAN("epoch");
        rng.shuffle(order);
        double epoch_loss = 0.0;
        double epoch_top5 = 0.0;
        std::size_t batches = 0;
        bool diverged = false;

        for (std::size_t start = 0; start + 1 < order.size(); start += config.batch_samples) {
            config.hooks.poll();
            const std::size_t end = std::min(start + config.batch_samples, order.size());
            const std::size_t batch_size = end - start;
            if (batch_size < 2) {
                break; // NT-Xent needs at least 2 samples (4 views)
            }
            // Interleaved double batch: rows (2i, 2i+1) are the two views.
            nn::Tensor inputs({2 * batch_size, 1, dim, dim});
            std::vector<std::size_t> view_labels(2 * batch_size, 0);
            auto data = inputs.data();
            {
                FPTC_TRACE_SPAN("datagen");
                for (std::size_t i = 0; i < batch_size; ++i) {
                    view_labels[2 * i] = view_labels[2 * i + 1] = flows[order[start + i]].label;
                    auto [view_a, view_b] = [&] {
                        FPTC_TRACE_SPAN("augment");
                        return views.view_pair(flows[order[start + i]], rng);
                    }();
                    FPTC_TRACE_SPAN("flowpic");
                    auto image_a = pool_to_effective(view_a);
                    auto image_b = pool_to_effective(view_b);
                    const auto normalize = [](std::vector<float>& image) {
                        float max_value = 0.0f;
                        for (const float v : image) {
                            max_value = std::max(max_value, v);
                        }
                        if (max_value > 0.0f) {
                            for (auto& v : image) {
                                v /= max_value;
                            }
                        }
                    };
                    normalize(image_a);
                    normalize(image_b);
                    std::copy(image_a.begin(), image_a.end(),
                              data.begin() + static_cast<std::ptrdiff_t>((2 * i) * plane));
                    std::copy(image_b.begin(), image_b.end(),
                              data.begin() + static_cast<std::ptrdiff_t>((2 * i + 1) * plane));
                }
            }

            const auto projections = [&] {
                FPTC_TRACE_SPAN("forward");
                return network.forward(inputs, /*training=*/true);
            }();
            const auto loss = [&] {
                FPTC_TRACE_SPAN("loss");
                return supervised ? nn::sup_con(projections, view_labels, config.temperature)
                                  : nn::nt_xent(projections, config.temperature);
            }();
            {
                FPTC_TRACE_SPAN("backward");
                network.zero_grad();
                network.backward(loss.grad);
            }
            if (guard.step_diverged(loss.loss)) {
                diverged = true;
                break;
            }
            {
                FPTC_TRACE_SPAN("optimizer");
                optimizer->step();
            }

            epoch_loss += loss.loss;
            epoch_top5 += nn::contrastive_top_k_accuracy(projections, 5);
            ++batches;
        }
        if (diverged) {
            if (!guard.rollback()) {
                throw DivergenceError("pretrain_contrastive: diverged " +
                                      std::to_string(guard.retries()) +
                                      " time(s); retry budget exhausted");
            }
            optimizer = std::make_unique<nn::Adam>(network.parameters(), config.learning_rate);
            rng = util::Rng(guard.retry_seed(config.seed));
            continue;
        }
        if (batches == 0) {
            break;
        }
        guard.commit();
        result.final_loss = epoch_loss / static_cast<double>(batches);
        const double top5 = epoch_top5 / static_cast<double>(batches);
        result.epochs_run = epoch + 1;

        if (top5 > best_top5 + 1e-4) {
            best_top5 = top5;
            epochs_since_improvement = 0;
        } else {
            ++epochs_since_improvement;
            if (epochs_since_improvement >= config.patience) {
                break;
            }
        }
        ++epoch;
    }
    result.best_top5_accuracy = best_top5;
    result.retries = guard.retries();
    result.faults_detected = guard.faults_detected();
    return result;
}

} // namespace

SimClrResult pretrain_simclr(nn::SimClrNetwork& network, std::span<const flow::Flow> flows,
                             const augment::ViewPairGenerator& views, const SimClrConfig& config)
{
    return pretrain_contrastive(network, flows, views, config, /*supervised=*/false);
}

SimClrResult pretrain_supcon(nn::SimClrNetwork& network, std::span<const flow::Flow> flows,
                             const augment::ViewPairGenerator& views, const SimClrConfig& config)
{
    return pretrain_contrastive(network, flows, views, config, /*supervised=*/true);
}

EmbeddedSet embed_set(nn::SimClrNetwork& network, const SampleSet& samples)
{
    EmbeddedSet embedded;
    embedded.labels = samples.labels;
    if (samples.size() == 0) {
        embedded.features = nn::Tensor({0, nn::kRepresentationDim});
        return embedded;
    }
    embedded.features = nn::Tensor({samples.size(), nn::kRepresentationDim});
    auto out = embedded.features.data();
    constexpr std::size_t kBatch = 64;
    std::vector<std::size_t> indices;
    for (std::size_t start = 0; start < samples.size(); start += kBatch) {
        const std::size_t end = std::min(start + kBatch, samples.size());
        indices.resize(end - start);
        for (std::size_t i = 0; i < indices.size(); ++i) {
            indices[i] = start + i;
        }
        const auto h = network.embed(samples.batch(indices));
        const auto h_data = h.data();
        std::copy(h_data.begin(), h_data.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(start * nn::kRepresentationDim));
    }
    return embedded;
}

namespace {

[[nodiscard]] nn::Tensor rows_of(const nn::Tensor& features, std::span<const std::size_t> indices)
{
    const std::size_t dim = features.dim(1);
    nn::Tensor out({indices.size(), dim});
    auto data = out.data();
    const auto src = features.data();
    for (std::size_t i = 0; i < indices.size(); ++i) {
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(indices[i] * dim),
                  src.begin() + static_cast<std::ptrdiff_t>((indices[i] + 1) * dim),
                  data.begin() + static_cast<std::ptrdiff_t>(i * dim));
    }
    return out;
}

} // namespace

TrainResult train_head(nn::Sequential& head, const EmbeddedSet& train, const TrainConfig& config)
{
    if (train.size() == 0) {
        throw std::invalid_argument("train_head: empty training set");
    }
    util::Rng rng(config.seed);
    const auto make_optimizer = [&]() -> std::unique_ptr<nn::Optimizer> {
        if (config.use_adam) {
            return std::make_unique<nn::Adam>(head.parameters(), config.learning_rate);
        }
        return std::make_unique<nn::Sgd>(head.parameters(), config.learning_rate);
    };
    auto optimizer = make_optimizer();
    DivergenceGuard guard(head.parameters(), config.guard);

    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    TrainResult result;
    double best = std::numeric_limits<double>::infinity();
    int epochs_since_improvement = 0;
    for (int epoch = 0; epoch < config.max_epochs;) {
        FPTC_TRACE_SPAN("epoch");
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t batches = 0;
        bool diverged = false;
        for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
            config.hooks.poll();
            const std::size_t end = std::min(start + config.batch_size, order.size());
            const std::span<const std::size_t> batch_indices(order.data() + start, end - start);
            const auto inputs = [&] {
                FPTC_TRACE_SPAN("datagen");
                return rows_of(train.features, batch_indices);
            }();
            std::vector<std::size_t> batch_labels(batch_indices.size());
            for (std::size_t i = 0; i < batch_indices.size(); ++i) {
                batch_labels[i] = train.labels[batch_indices[i]];
            }
            const auto logits = [&] {
                FPTC_TRACE_SPAN("forward");
                return head.forward(inputs, /*training=*/true);
            }();
            const auto loss = [&] {
                FPTC_TRACE_SPAN("loss");
                return nn::cross_entropy(logits, batch_labels);
            }();
            {
                FPTC_TRACE_SPAN("backward");
                head.zero_grad();
                (void)head.backward(loss.grad);
            }
            if (guard.step_diverged(loss.loss)) {
                diverged = true;
                break;
            }
            {
                FPTC_TRACE_SPAN("optimizer");
                optimizer->step();
            }
            epoch_loss += loss.loss;
            ++batches;
        }
        if (diverged) {
            if (!guard.rollback()) {
                throw DivergenceError("train_head: diverged " + std::to_string(guard.retries()) +
                                      " time(s); retry budget exhausted");
            }
            optimizer = make_optimizer();
            rng = util::Rng(guard.retry_seed(config.seed));
            continue;
        }
        guard.commit();
        result.final_train_loss = epoch_loss / static_cast<double>(batches);
        result.epochs_run = epoch + 1;
        result.validation_history.push_back(result.final_train_loss);

        // The paper fine-tunes with early stopping on the *train* loss.
        if (result.final_train_loss < best - config.min_delta) {
            best = result.final_train_loss;
            epochs_since_improvement = 0;
        } else {
            ++epochs_since_improvement;
            if (epochs_since_improvement >= config.patience) {
                break;
            }
        }
        ++epoch;
    }
    result.best_validation_loss = best;
    result.retries = guard.retries();
    result.faults_detected = guard.faults_detected();
    return result;
}

stats::ConfusionMatrix evaluate_head(nn::Sequential& head, const EmbeddedSet& samples,
                                     std::size_t num_classes)
{
    stats::ConfusionMatrix confusion(num_classes);
    if (samples.size() == 0) {
        return confusion;
    }
    std::vector<std::size_t> indices(samples.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        indices[i] = i;
    }
    const auto logits = head.forward(rows_of(samples.features, indices), /*training=*/false);
    const auto predictions = nn::argmax_rows(logits);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        confusion.add(samples.labels[i], predictions[i]);
    }
    return confusion;
}

stats::ConfusionMatrix finetune_and_evaluate(nn::SimClrNetwork& network, nn::Sequential& head,
                                             const SampleSet& train, const SampleSet& test,
                                             std::size_t num_classes, const TrainConfig& config)
{
    const auto train_embedded = embed_set(network, train);
    const auto test_embedded = embed_set(network, test);
    (void)train_head(head, train_embedded, config);
    return evaluate_head(head, test_embedded, num_classes);
}

TrainConfig finetune_config(std::uint64_t seed)
{
    TrainConfig config;
    config.learning_rate = 1e-2;
    config.patience = 5;
    config.min_delta = 1e-3;
    config.max_epochs = 100;
    config.batch_size = 32;
    config.seed = seed;
    return config;
}

} // namespace fptc::core
