#include "fptc/core/data.hpp"

#include "fptc/nn/models.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace fptc::core {

nn::Tensor SampleSet::batch(std::span<const std::size_t> indices) const
{
    if (indices.empty()) {
        throw std::invalid_argument("SampleSet::batch: empty index list");
    }
    nn::Tensor out({indices.size(), channels, dim, dim});
    auto data = out.data();
    const std::size_t plane = channels * dim * dim;
    for (std::size_t b = 0; b < indices.size(); ++b) {
        const auto& image = images.at(indices[b]);
        std::copy(image.begin(), image.end(), data.begin() + static_cast<std::ptrdiff_t>(b * plane));
    }
    return out;
}

nn::Tensor SampleSet::tensor_of(std::size_t index) const
{
    const std::size_t idx[1] = {index};
    return batch(idx);
}

void SampleSet::append(const SampleSet& other)
{
    if (other.dim != dim || other.channels != channels) {
        throw std::invalid_argument("SampleSet::append: shape mismatch");
    }
    std::size_t added_bytes = 0;
    for (const auto& image : other.images) {
        added_bytes += image.size() * sizeof(float);
    }
    storage.grow(added_bytes);
    images.insert(images.end(), other.images.begin(), other.images.end());
    labels.insert(labels.end(), other.labels.begin(), other.labels.end());
    quarantined += other.quarantined;
}

std::vector<float> pool_to_effective(const flowpic::Flowpic& pic)
{
    const std::size_t n = pic.resolution();
    const std::size_t effective = nn::effective_input_dim(n);
    if (effective == n) {
        return {pic.counts().begin(), pic.counts().end()};
    }
    const std::size_t window = n / 64;
    std::vector<float> pooled(effective * effective, 0.0f);
    const auto counts = pic.counts();
    for (std::size_t r = 0; r < effective; ++r) {
        for (std::size_t c = 0; c < effective; ++c) {
            float best = 0.0f;
            for (std::size_t wy = 0; wy < window; ++wy) {
                for (std::size_t wx = 0; wx < window; ++wx) {
                    best = std::max(best, counts[(r * window + wy) * n + (c * window + wx)]);
                }
            }
            pooled[r * effective + c] = best;
        }
    }
    return pooled;
}

namespace {

/// First hard semantic defect in a flowpic tensor, or empty when it honors
/// the insertion-time contract (shape, finiteness, non-negativity).  These
/// defects cannot be produced by the rasterize/augment pipeline on valid
/// input — color jitter clamps at zero and counts are accumulations of
/// non-negative packet sizes — so any hit indicates corruption (bad cache,
/// injected fault, memory damage) and the sample is quarantined rather than
/// averaged into a mean±CI.
[[nodiscard]] std::string image_defect(const std::vector<float>& image, std::size_t expected_size)
{
    if (image.size() != expected_size) {
        return "shape mismatch (" + std::to_string(image.size()) + " values, expected " +
               std::to_string(expected_size) + ")";
    }
    for (const float v : image) {
        if (!std::isfinite(v)) {
            return "non-finite value";
        }
        if (v < 0.0f) {
            return "negative value";
        }
    }
    return {};
}

void normalize_image(std::vector<float>& image)
{
    // Per-image max normalization for the CNN input.
    float max_value = 0.0f;
    for (const float v : image) {
        max_value = std::max(max_value, v);
    }
    if (max_value > 0.0f) {
        for (auto& v : image) {
            v /= max_value;
        }
    }
}

void push_sample(SampleSet& set, flowpic::Flowpic pic, std::size_t label)
{
    auto image = pool_to_effective(pic);
    normalize_image(image);
    if (!image_defect(image, set.channels * set.dim * set.dim).empty()) {
        ++set.quarantined;
        util::metrics().counter("fptc_data_quarantined_total").add(1);
        return;
    }
    set.storage.grow(image.size() * sizeof(float));
    set.images.push_back(std::move(image));
    set.labels.push_back(label);
}

/// Push a 2-channel (upstream, downstream) sample; both channels share one
/// normalization so their relative magnitudes stay meaningful.
void push_directional_sample(SampleSet& set, const flowpic::Flowpic& up,
                             const flowpic::Flowpic& down, std::size_t label)
{
    auto up_plane = pool_to_effective(up);
    const auto down_plane = pool_to_effective(down);
    up_plane.insert(up_plane.end(), down_plane.begin(), down_plane.end());
    normalize_image(up_plane);
    if (!image_defect(up_plane, set.channels * set.dim * set.dim).empty()) {
        ++set.quarantined;
        util::metrics().counter("fptc_data_quarantined_total").add(1);
        return;
    }
    set.storage.grow(up_plane.size() * sizeof(float));
    set.images.push_back(std::move(up_plane));
    set.labels.push_back(label);
}

} // namespace

SampleValidationReport validate_samples(SampleSet& set)
{
    SampleValidationReport report;
    const std::size_t expected = set.channels * set.dim * set.dim;
    std::size_t kept = 0;
    std::size_t freed_bytes = 0;
    for (std::size_t i = 0; i < set.images.size(); ++i) {
        ++report.checked;
        std::string defect = image_defect(set.images[i], expected);
        if (defect.empty()) {
            // Full-contract checks beyond the insertion-time subset: the set
            // stores max-normalized images, so values above 1 or an all-zero
            // tensor mark a sample that never went through normalize_image.
            float mass = 0.0f;
            float max_value = 0.0f;
            for (const float v : set.images[i]) {
                mass += v;
                max_value = std::max(max_value, v);
            }
            if (max_value > 1.0f + 1e-4f) {
                defect = "value above normalized max (" + std::to_string(max_value) + ")";
            } else if (mass <= 0.0f) {
                defect = "zero mass (empty flowpic)";
            }
        }
        if (!defect.empty()) {
            ++report.quarantined;
            freed_bytes += set.images[i].size() * sizeof(float);
            if (report.first_defect.empty()) {
                report.first_defect = "sample " + std::to_string(i) + ": " + defect;
            }
            continue;
        }
        if (kept != i) {
            set.images[kept] = std::move(set.images[i]);
            set.labels[kept] = set.labels[i];
        }
        ++kept;
    }
    set.images.resize(kept);
    set.labels.resize(kept);
    set.storage.shrink(freed_bytes);
    set.quarantined += report.quarantined;
    if (report.quarantined > 0) {
        util::metrics().counter("fptc_data_quarantined_total").add(report.quarantined);
    }
    return report;
}

SampleSet rasterize(std::span<const flow::Flow> flows, const flowpic::FlowpicConfig& config)
{
    SampleSet set;
    set.native_resolution = config.resolution;
    set.dim = nn::effective_input_dim(config.resolution);
    set.images.reserve(flows.size());
    set.labels.reserve(flows.size());
    for (const auto& flow : flows) {
        FPTC_TRACE_SPAN("flowpic");
        push_sample(set, flowpic::Flowpic::from_flow(flow, config), flow.label);
    }
    return set;
}

SampleSet augment_set(std::span<const flow::Flow> flows, augment::AugmentationKind kind, int copies,
                      const flowpic::FlowpicConfig& config, util::Rng& rng)
{
    if (kind == augment::AugmentationKind::none) {
        return rasterize(flows, config);
    }
    if (copies < 1) {
        throw std::invalid_argument("augment_set: copies must be >= 1");
    }
    const auto augmentation = augment::make_augmentation(kind);
    SampleSet set;
    set.native_resolution = config.resolution;
    set.dim = nn::effective_input_dim(config.resolution);
    set.images.reserve(flows.size() * static_cast<std::size_t>(copies));
    set.labels.reserve(set.images.capacity());
    for (const auto& flow : flows) {
        for (int c = 0; c < copies; ++c) {
            FPTC_TRACE_SPAN("augment");
            push_sample(set, augmentation->augmented_flowpic(flow, config, rng), flow.label);
        }
    }
    return set;
}

SampleSet rasterize_directional(std::span<const flow::Flow> flows,
                                const flowpic::FlowpicConfig& config)
{
    SampleSet set;
    set.native_resolution = config.resolution;
    set.dim = nn::effective_input_dim(config.resolution);
    set.channels = 2;
    set.images.reserve(flows.size());
    set.labels.reserve(flows.size());
    for (const auto& flow : flows) {
        FPTC_TRACE_SPAN("flowpic");
        const auto [up, down] = flowpic::directional_flowpics(flow, config);
        push_directional_sample(set, up, down, flow.label);
    }
    return set;
}

SampleSet augment_set_directional(std::span<const flow::Flow> flows,
                                  augment::AugmentationKind kind, int copies,
                                  const flowpic::FlowpicConfig& config, util::Rng& rng)
{
    if (kind == augment::AugmentationKind::none) {
        return rasterize_directional(flows, config);
    }
    if (copies < 1) {
        throw std::invalid_argument("augment_set_directional: copies must be >= 1");
    }
    const auto augmentation = augment::make_augmentation(kind);
    SampleSet set;
    set.native_resolution = config.resolution;
    set.dim = nn::effective_input_dim(config.resolution);
    set.channels = 2;
    for (const auto& flow : flows) {
        for (int c = 0; c < copies; ++c) {
            FPTC_TRACE_SPAN("augment");
            if (augmentation->is_time_series()) {
                const auto transformed = augmentation->transform_flow(flow, rng);
                const auto [up, down] = flowpic::directional_flowpics(transformed, config);
                push_directional_sample(set, up, down, flow.label);
            } else {
                // Image-space strategies must use identical random draws on
                // both channels to keep the geometry coherent.
                auto [up, down] = flowpic::directional_flowpics(flow, config);
                util::Rng channel_rng = rng.fork();
                util::Rng up_rng = channel_rng;
                util::Rng down_rng = channel_rng;
                up = augmentation->transform_pic(std::move(up), up_rng);
                down = augmentation->transform_pic(std::move(down), down_rng);
                push_directional_sample(set, up, down, flow.label);
            }
        }
    }
    return set;
}

} // namespace fptc::core
