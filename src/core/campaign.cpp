#include "fptc/core/campaign.hpp"

#include "fptc/util/log.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fptc::core {

UcdavisData load_ucdavis(double samples_scale, std::uint64_t seed)
{
    trafficgen::UcdavisOptions options;
    options.samples_scale = samples_scale;
    options.seed = seed;
    UcdavisData data;
    data.pretraining = trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::pretraining, options);
    data.script = trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::script, options);
    data.human = trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::human, options);
    return data;
}

namespace {

/// Select per-class labeled subsets from flow indices.
[[nodiscard]] std::vector<flow::Flow> take_per_class(const flow::Dataset& dataset,
                                                     const std::vector<std::size_t>& indices,
                                                     std::size_t per_class, util::Rng& rng)
{
    std::vector<std::vector<std::size_t>> by_class(dataset.num_classes());
    for (const auto i : indices) {
        by_class[dataset.flows[i].label].push_back(i);
    }
    std::vector<flow::Flow> result;
    for (auto& bucket : by_class) {
        rng.shuffle(bucket);
        const std::size_t take = std::min(per_class, bucket.size());
        for (std::size_t i = 0; i < take; ++i) {
            result.push_back(dataset.flows[bucket[i]]);
        }
    }
    return result;
}

[[nodiscard]] std::vector<flow::Flow> materialize(const flow::Dataset& dataset,
                                                  const std::vector<std::size_t>& indices)
{
    std::vector<flow::Flow> flows;
    flows.reserve(indices.size());
    for (const auto i : indices) {
        flows.push_back(dataset.flows[i]);
    }
    return flows;
}

/// Subsample a test index list to a cap (0 disables the cap).
[[nodiscard]] std::vector<std::size_t> cap_indices(std::vector<std::size_t> indices,
                                                   std::size_t cap, std::uint64_t seed)
{
    if (cap == 0 || indices.size() <= cap) {
        return indices;
    }
    util::Rng rng(seed);
    rng.shuffle(indices);
    indices.resize(cap);
    return indices;
}

/// Rasterize honoring the directional flag of the options.
[[nodiscard]] SampleSet rasterize_for(const SupervisedOptions& options,
                                      std::span<const flow::Flow> flows)
{
    FPTC_TRACE_SPAN("dataset");
    return options.directional ? rasterize_directional(flows, options.flowpic)
                               : rasterize(flows, options.flowpic);
}

/// Augment honoring the directional flag of the options.
[[nodiscard]] SampleSet augment_for(const SupervisedOptions& options,
                                    std::span<const flow::Flow> flows,
                                    augment::AugmentationKind kind, util::Rng& rng)
{
    FPTC_TRACE_SPAN("dataset");
    return options.directional
               ? augment_set_directional(flows, kind, options.augment_copies, options.flowpic, rng)
               : augment_set(flows, kind, options.augment_copies, options.flowpic, rng);
}

/// Data-boundary guard: quarantined samples (corrupt tensors scrubbed by
/// core/data) are logged and tolerated while the set stays usable; an empty
/// or majority-quarantined set throws so the executor degrades the cell
/// (†N) instead of letting corruption skew a mean±CI.
void require_usable(const SampleSet& set, const char* what)
{
    if (set.quarantined > 0) {
        util::log_info("campaign: quarantined " + std::to_string(set.quarantined) +
                       " corrupt " + what + " sample(s)");
    }
    if (set.size() == 0 || set.quarantined > set.size()) {
        throw std::runtime_error(std::string("campaign: ") + what + " sample set unusable (" +
                                 std::to_string(set.size()) + " kept, " +
                                 std::to_string(set.quarantined) + " quarantined)");
    }
}

/// Train a supervised LeNet per the paper's protocol on pre-built sets.
[[nodiscard]] std::pair<nn::Sequential, TrainResult> train_lenet(const SampleSet& train,
                                                                 const SampleSet& validation,
                                                                 std::size_t num_classes,
                                                                 const SupervisedOptions& options,
                                                                 std::uint64_t train_seed)
{
    require_usable(train, "training");
    require_usable(validation, "validation");
    nn::ModelConfig model_config;
    model_config.flowpic_dim = options.flowpic.resolution;
    model_config.input_channels = options.directional ? 2 : 1;
    model_config.num_classes = num_classes;
    model_config.with_dropout = options.with_dropout;
    model_config.seed = util::mix_seed(train_seed, 0xF00D);

    nn::Sequential network = nn::make_supervised_network(model_config);
    TrainConfig train_config;
    train_config.batch_size = options.batch_size;
    train_config.max_epochs = options.max_epochs;
    train_config.seed = util::mix_seed(train_seed, 0xBEEF);
    train_config.hooks = options.hooks;
    auto result = train_supervised(network, train, validation, train_config);
    return {std::move(network), std::move(result)};
}

} // namespace

SupervisedRunResult run_ucdavis_supervised(const UcdavisData& data,
                                           augment::AugmentationKind augmentation,
                                           std::uint64_t split_seed, std::uint64_t train_seed,
                                           const SupervisedOptions& options)
{
    // 100-per-class split from the pretraining partition; the rest is the
    // "leftover" test set of Table 4.
    const auto split =
        flow::fixed_per_class_split(data.pretraining, options.per_class, split_seed);
    // 80/20 train/validation split of the selected samples.
    const auto tv = flow::train_validation_split(split.train, 0.8, train_seed);

    const auto train_flows = materialize(data.pretraining, tv.train);
    const auto val_flows = materialize(data.pretraining, tv.validation);
    const auto leftover_indices =
        cap_indices(split.test, options.leftover_cap, util::mix_seed(split_seed, 0x1EF7));
    const auto leftover_flows = materialize(data.pretraining, leftover_indices);

    util::Rng augment_rng(util::mix_seed(train_seed, 0xA06));
    const auto train_set = augment_for(options, train_flows, augmentation, augment_rng);
    const auto val_set = rasterize_for(options, val_flows);

    auto [network, training] =
        train_lenet(train_set, val_set, data.num_classes(), options, train_seed);

    SupervisedRunResult result{
        .script_confusion = stats::ConfusionMatrix(data.num_classes()),
        .human_confusion = stats::ConfusionMatrix(data.num_classes()),
        .leftover_confusion = stats::ConfusionMatrix(data.num_classes()),
        .epochs_run = training.epochs_run,
        .retries = training.retries,
        .faults_detected = training.faults_detected,
    };
    result.script_confusion =
        evaluate(network, rasterize_for(options, data.script.flows), data.num_classes());
    result.human_confusion =
        evaluate(network, rasterize_for(options, data.human.flows), data.num_classes());
    result.leftover_confusion =
        evaluate(network, rasterize_for(options, leftover_flows), data.num_classes());
    return result;
}

namespace {

[[nodiscard]] SimClrRunResult run_ucdavis_contrastive(const UcdavisData& data,
                                                      std::uint64_t split_seed,
                                                      std::uint64_t pretrain_seed,
                                                      std::uint64_t finetune_seed,
                                                      const SimClrOptions& options,
                                                      bool supervised)
{
    const auto split =
        flow::fixed_per_class_split(data.pretraining, options.per_class, split_seed);
    const auto pool_flows = materialize(data.pretraining, split.train);

    nn::ModelConfig model_config;
    model_config.flowpic_dim = options.flowpic.resolution;
    model_config.num_classes = data.num_classes();
    model_config.with_dropout = options.with_dropout;
    model_config.projection_dim = options.projection_dim;
    model_config.seed = util::mix_seed(pretrain_seed, 0x51C);

    auto network = nn::make_simclr_network(model_config);
    const augment::ViewPairGenerator views(options.first, options.second, options.flowpic);

    SimClrConfig pretrain_config;
    pretrain_config.batch_samples = options.batch_samples;
    pretrain_config.max_epochs = options.pretrain_max_epochs;
    pretrain_config.seed = util::mix_seed(pretrain_seed, 0x517);
    pretrain_config.hooks = options.hooks;
    const auto pretrain_result =
        supervised ? pretrain_supcon(network, pool_flows, views, pretrain_config)
                   : pretrain_simclr(network, pool_flows, views, pretrain_config);

    // Labeled few-shot subset from the same pool.
    util::Rng label_rng(util::mix_seed(finetune_seed, 0xF1E7));
    std::vector<std::size_t> pool_indices(pool_flows.size());
    for (std::size_t i = 0; i < pool_indices.size(); ++i) {
        pool_indices[i] = i;
    }
    flow::Dataset pool_dataset;
    pool_dataset.class_names = data.pretraining.class_names;
    pool_dataset.flows = pool_flows;
    const auto labeled = take_per_class(pool_dataset, pool_indices,
                                        options.finetune_per_class, label_rng);

    const auto train_set = rasterize(labeled, options.flowpic);
    const auto script_set = rasterize(data.script.flows, options.flowpic);
    const auto human_set = rasterize(data.human.flows, options.flowpic);

    nn::ModelConfig head_config = model_config;
    head_config.seed = util::mix_seed(finetune_seed, 0x4EAD);
    auto head = nn::make_finetune_head(head_config);
    auto ft_config = finetune_config(util::mix_seed(finetune_seed, 0x7A1));
    ft_config.hooks = options.hooks;

    const auto train_embedded = embed_set(network, train_set);
    const auto head_result = train_head(head, train_embedded, ft_config);

    SimClrRunResult result{
        .script_confusion = evaluate_head(head, embed_set(network, script_set), data.num_classes()),
        .human_confusion = evaluate_head(head, embed_set(network, human_set), data.num_classes()),
        .pretrain_epochs = pretrain_result.epochs_run,
        .top5_accuracy = pretrain_result.best_top5_accuracy,
        .retries = pretrain_result.retries + head_result.retries,
        .faults_detected = pretrain_result.faults_detected + head_result.faults_detected,
    };
    return result;
}

} // namespace

SimClrRunResult run_ucdavis_simclr(const UcdavisData& data, std::uint64_t split_seed,
                                   std::uint64_t pretrain_seed, std::uint64_t finetune_seed,
                                   const SimClrOptions& options)
{
    return run_ucdavis_contrastive(data, split_seed, pretrain_seed, finetune_seed, options,
                                   /*supervised=*/false);
}

SimClrRunResult run_ucdavis_supcon(const UcdavisData& data, std::uint64_t split_seed,
                                   std::uint64_t pretrain_seed, std::uint64_t finetune_seed,
                                   const SimClrOptions& options)
{
    return run_ucdavis_contrastive(data, split_seed, pretrain_seed, finetune_seed, options,
                                   /*supervised=*/true);
}

SupervisedRunResult run_ucdavis_enlarged_supervised(const UcdavisData& data,
                                                    augment::AugmentationKind augmentation,
                                                    std::uint64_t seed,
                                                    const SupervisedOptions& options)
{
    std::vector<std::size_t> all(data.pretraining.flows.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = i;
    }
    const auto tv = flow::train_validation_split(all, 0.8, seed);
    const auto train_flows = materialize(data.pretraining, tv.train);
    const auto val_flows = materialize(data.pretraining, tv.validation);

    util::Rng augment_rng(util::mix_seed(seed, 0xA06));
    const auto train_set = augment_for(options, train_flows, augmentation, augment_rng);
    const auto val_set = rasterize_for(options, val_flows);

    auto [network, training] = train_lenet(train_set, val_set, data.num_classes(), options, seed);

    SupervisedRunResult result{
        .script_confusion =
            evaluate(network, rasterize_for(options, data.script.flows), data.num_classes()),
        .human_confusion =
            evaluate(network, rasterize_for(options, data.human.flows), data.num_classes()),
        .leftover_confusion = stats::ConfusionMatrix(data.num_classes()),
        .epochs_run = training.epochs_run,
        .retries = training.retries,
        .faults_detected = training.faults_detected,
    };
    return result;
}

SimClrRunResult run_ucdavis_enlarged_simclr(const UcdavisData& data, std::uint64_t seed,
                                            const SimClrOptions& options)
{
    nn::ModelConfig model_config;
    model_config.flowpic_dim = options.flowpic.resolution;
    model_config.num_classes = data.num_classes();
    model_config.with_dropout = options.with_dropout;
    model_config.projection_dim = options.projection_dim;
    model_config.seed = util::mix_seed(seed, 0x51C);

    auto network = nn::make_simclr_network(model_config);
    const augment::ViewPairGenerator views(options.first, options.second, options.flowpic);

    SimClrConfig pretrain_config;
    pretrain_config.batch_samples = options.batch_samples;
    pretrain_config.max_epochs = options.pretrain_max_epochs;
    pretrain_config.seed = util::mix_seed(seed, 0x517);
    pretrain_config.hooks = options.hooks;
    const auto pretrain_result =
        pretrain_simclr(network, data.pretraining.flows, views, pretrain_config);

    util::Rng label_rng(util::mix_seed(seed, 0xF1E7));
    std::vector<std::size_t> all(data.pretraining.flows.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = i;
    }
    const auto labeled =
        take_per_class(data.pretraining, all, options.finetune_per_class, label_rng);

    const auto train_set = rasterize(labeled, options.flowpic);
    nn::ModelConfig head_config = model_config;
    head_config.seed = util::mix_seed(seed, 0x4EAD);
    auto head = nn::make_finetune_head(head_config);
    auto ft_config = finetune_config(util::mix_seed(seed, 0x7A1));
    ft_config.hooks = options.hooks;
    const auto train_embedded = embed_set(network, train_set);
    const auto head_result = train_head(head, train_embedded, ft_config);

    SimClrRunResult result{
        .script_confusion = evaluate_head(
            head, embed_set(network, rasterize(data.script.flows, options.flowpic)),
            data.num_classes()),
        .human_confusion = evaluate_head(
            head, embed_set(network, rasterize(data.human.flows, options.flowpic)),
            data.num_classes()),
        .pretrain_epochs = pretrain_result.epochs_run,
        .top5_accuracy = pretrain_result.best_top5_accuracy,
        .retries = pretrain_result.retries + head_result.retries,
        .faults_detected = pretrain_result.faults_detected + head_result.faults_detected,
    };
    return result;
}

ReplicationRunResult run_replication_supervised(const flow::Dataset& dataset,
                                                augment::AugmentationKind augmentation,
                                                std::uint64_t split_seed, std::uint64_t train_seed,
                                                const SupervisedOptions& options)
{
    const auto split = flow::stratified_split(dataset, 0.8, 0.1, split_seed);
    const auto train_flows = materialize(dataset, split.train);
    const auto val_flows = materialize(dataset, split.validation);
    const auto test_flows = materialize(dataset, split.test);

    util::Rng augment_rng(util::mix_seed(train_seed, 0xA06));
    const auto train_set = augment_for(options, train_flows, augmentation, augment_rng);
    const auto val_set = rasterize_for(options, val_flows);

    auto [network, training] =
        train_lenet(train_set, val_set, dataset.num_classes(), options, train_seed);

    ReplicationRunResult result{
        .test_confusion =
            evaluate(network, rasterize_for(options, test_flows), dataset.num_classes()),
        .epochs_run = training.epochs_run,
        .retries = training.retries,
        .faults_detected = training.faults_detected,
    };
    return result;
}

} // namespace fptc::core
