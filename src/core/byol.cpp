#include "fptc/core/byol.hpp"

#include "fptc/nn/layers.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/optimizer.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace fptc::core {

namespace {

/// Copy every parameter value of `source` into `destination`.
void copy_parameters(nn::SimClrNetwork& source, nn::SimClrNetwork& destination)
{
    const auto from = source.parameters();
    const auto to = destination.parameters();
    if (from.size() != to.size()) {
        throw std::logic_error("copy_parameters: mismatched networks");
    }
    for (std::size_t i = 0; i < from.size(); ++i) {
        to[i]->value = from[i]->value;
    }
}

/// EMA update: target <- decay * target + (1 - decay) * online.
void ema_update(nn::SimClrNetwork& online, nn::SimClrNetwork& target, double decay)
{
    const auto from = online.parameters();
    const auto to = target.parameters();
    const auto d = static_cast<float>(decay);
    for (std::size_t i = 0; i < from.size(); ++i) {
        auto dst = to[i]->value.data();
        const auto src = from[i]->value.data();
        for (std::size_t j = 0; j < dst.size(); ++j) {
            dst[j] = d * dst[j] + (1.0f - d) * src[j];
        }
    }
}

/// L2-normalize rows; returns norms.
void normalize_rows(const nn::Tensor& input, nn::Tensor& normalized, std::vector<double>& norms)
{
    const std::size_t rows = input.dim(0);
    const std::size_t dim = input.dim(1);
    normalized = input;
    norms.assign(rows, 0.0);
    auto data = normalized.data();
    for (std::size_t r = 0; r < rows; ++r) {
        float* row = data.data() + r * dim;
        double norm_sq = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            norm_sq += static_cast<double>(row[d]) * row[d];
        }
        norms[r] = std::sqrt(std::max(norm_sq, 1e-24));
        const auto inv = static_cast<float>(1.0 / norms[r]);
        for (std::size_t d = 0; d < dim; ++d) {
            row[d] *= inv;
        }
    }
}

/// BYOL regression loss between predictor outputs q and (stop-gradient)
/// targets t: mean_i || normalize(q_i) - normalize(t_i) ||^2, with the
/// gradient w.r.t. q (through the normalization).
[[nodiscard]] nn::LossResult byol_regression(const nn::Tensor& predictions,
                                             const nn::Tensor& targets)
{
    nn::require_same_shape(predictions, targets, "byol_regression");
    const std::size_t rows = predictions.dim(0);
    const std::size_t dim = predictions.dim(1);

    nn::Tensor p;
    nn::Tensor t;
    std::vector<double> p_norms;
    std::vector<double> t_norms;
    normalize_rows(predictions, p, p_norms);
    normalize_rows(targets, t, t_norms);

    nn::LossResult result;
    result.grad = nn::Tensor(predictions.shape());
    const auto p_data = p.data();
    const auto t_data = t.data();
    auto g = result.grad.data();
    double total = 0.0;
    const double inv_rows = 1.0 / static_cast<double>(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        const float* p_row = p_data.data() + r * dim;
        const float* t_row = t_data.data() + r * dim;
        float* g_row = g.data() + r * dim;
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            dot += static_cast<double>(p_row[d]) * t_row[d];
        }
        total += (2.0 - 2.0 * dot) * inv_rows;
        // dL/dp = -2 t / rows; through normalization:
        // dL/dq = (I - p p^T) (dL/dp) / ||q||.
        double proj = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            proj += static_cast<double>(p_row[d]) * (-2.0 * t_row[d]);
        }
        const double inv_norm = inv_rows / p_norms[r];
        for (std::size_t d = 0; d < dim; ++d) {
            g_row[d] = static_cast<float>(
                ((-2.0 * t_row[d]) - proj * p_row[d]) * inv_norm);
        }
    }
    result.loss = total;
    return result;
}

/// Rasterize one view into a row of the batch tensor (max-normalized).
void write_view(nn::Tensor& batch, std::size_t row, const flowpic::Flowpic& view)
{
    auto image = pool_to_effective(view);
    float max_value = 0.0f;
    for (const float v : image) {
        max_value = std::max(max_value, v);
    }
    if (max_value > 0.0f) {
        for (auto& v : image) {
            v /= max_value;
        }
    }
    auto data = batch.data();
    std::copy(image.begin(), image.end(),
              data.begin() + static_cast<std::ptrdiff_t>(row * image.size()));
}

} // namespace

ByolNetwork make_byol_network(const nn::ModelConfig& config)
{
    ByolNetwork network;
    network.online = nn::make_simclr_network(config);
    network.target = nn::make_simclr_network(config);
    copy_parameters(network.online, network.target); // exact initial copy

    // Predictor q: projection -> projection MLP (BYOL's asymmetry).
    network.predictor.add(std::make_unique<nn::Linear>(config.projection_dim,
                                                       config.projection_dim,
                                                       util::mix_seed(config.seed, 30)));
    network.predictor.add(std::make_unique<nn::ReLU>());
    network.predictor.add(std::make_unique<nn::Linear>(config.projection_dim,
                                                       config.projection_dim,
                                                       util::mix_seed(config.seed, 31)));
    return network;
}

ByolResult pretrain_byol(ByolNetwork& network, std::span<const flow::Flow> flows,
                         const augment::ViewPairGenerator& views, const ByolConfig& config)
{
    if (flows.size() < 2) {
        throw std::invalid_argument("pretrain_byol: need at least 2 flows");
    }
    util::Rng rng(config.seed);

    auto trainable = network.online.parameters();
    const auto predictor_params = network.predictor.parameters();
    trainable.insert(trainable.end(), predictor_params.begin(), predictor_params.end());
    auto optimizer = std::make_unique<nn::Adam>(trainable, config.learning_rate);

    // The guard snapshots the target network too: its EMA state must roll
    // back together with the online weights it trails.
    auto guarded = trainable;
    const auto target_params = network.target.parameters();
    guarded.insert(guarded.end(), target_params.begin(), target_params.end());
    DivergenceGuard guard(guarded, config.guard);

    const std::size_t dim = nn::effective_input_dim(views.config().resolution);
    std::vector<std::size_t> order(flows.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    ByolResult result;
    double best_loss = std::numeric_limits<double>::infinity();
    int epochs_since_improvement = 0;

    for (int epoch = 0; epoch < config.max_epochs;) {
        FPTC_TRACE_SPAN("epoch");
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t batches = 0;
        bool diverged = false;
        for (std::size_t start = 0; start + 1 < order.size(); start += config.batch_samples) {
            config.hooks.poll();
            const std::size_t end = std::min(start + config.batch_samples, order.size());
            const std::size_t batch = end - start;
            nn::Tensor view_a({batch, 1, dim, dim});
            nn::Tensor view_b({batch, 1, dim, dim});
            {
                FPTC_TRACE_SPAN("datagen");
                for (std::size_t i = 0; i < batch; ++i) {
                    auto [a, b] = [&] {
                        FPTC_TRACE_SPAN("augment");
                        return views.view_pair(flows[order[start + i]], rng);
                    }();
                    FPTC_TRACE_SPAN("flowpic");
                    write_view(view_a, i, a);
                    write_view(view_b, i, b);
                }
            }

            nn::Tensor target_a;
            nn::Tensor target_b;
            nn::Tensor p_a;
            nn::Tensor p_b;
            {
                FPTC_TRACE_SPAN("forward");
                // Targets first (stop-gradient: only forward passes).
                target_b = network.target.forward(view_b, /*training=*/false);
                target_a = network.target.forward(view_a, /*training=*/false);
            }

            network.online.zero_grad();
            network.predictor.zero_grad();

            // Direction a -> b.
            const auto z_a = [&] {
                FPTC_TRACE_SPAN("forward");
                return network.online.forward(view_a, /*training=*/true);
            }();
            p_a = network.predictor.forward(z_a, /*training=*/true);
            const auto loss_ab = [&] {
                FPTC_TRACE_SPAN("loss");
                return byol_regression(p_a, target_b);
            }();
            {
                FPTC_TRACE_SPAN("backward");
                network.online.backward(network.predictor.backward(loss_ab.grad));
            }

            // Direction b -> a (gradients accumulate).
            const auto z_b = [&] {
                FPTC_TRACE_SPAN("forward");
                return network.online.forward(view_b, /*training=*/true);
            }();
            p_b = network.predictor.forward(z_b, /*training=*/true);
            const auto loss_ba = [&] {
                FPTC_TRACE_SPAN("loss");
                return byol_regression(p_b, target_a);
            }();
            {
                FPTC_TRACE_SPAN("backward");
                network.online.backward(network.predictor.backward(loss_ba.grad));
            }

            if (guard.step_diverged(0.5 * (loss_ab.loss + loss_ba.loss))) {
                diverged = true;
                break;
            }
            {
                FPTC_TRACE_SPAN("optimizer");
                optimizer->step();
                ema_update(network.online, network.target, config.ema_decay);
            }

            epoch_loss += 0.5 * (loss_ab.loss + loss_ba.loss);
            ++batches;
        }
        if (diverged) {
            if (!guard.rollback()) {
                throw DivergenceError("pretrain_byol: diverged " +
                                      std::to_string(guard.retries()) +
                                      " time(s); retry budget exhausted");
            }
            optimizer = std::make_unique<nn::Adam>(trainable, config.learning_rate);
            rng = util::Rng(guard.retry_seed(config.seed));
            continue;
        }
        if (batches == 0) {
            break;
        }
        guard.commit();
        result.final_loss = epoch_loss / static_cast<double>(batches);
        result.epochs_run = epoch + 1;
        if (result.final_loss < best_loss - config.min_delta) {
            best_loss = result.final_loss;
            epochs_since_improvement = 0;
        } else if (++epochs_since_improvement >= config.patience) {
            break;
        }
        ++epoch;
    }
    result.retries = guard.retries();
    result.faults_detected = guard.faults_detected();
    return result;
}

SimClrRunResult run_ucdavis_byol(const UcdavisData& data, std::uint64_t split_seed,
                                 std::uint64_t pretrain_seed, std::uint64_t finetune_seed,
                                 const SimClrOptions& options)
{
    const auto split = flow::fixed_per_class_split(data.pretraining, options.per_class, split_seed);
    std::vector<flow::Flow> pool;
    pool.reserve(split.train.size());
    for (const auto i : split.train) {
        pool.push_back(data.pretraining.flows[i]);
    }

    nn::ModelConfig model_config;
    model_config.flowpic_dim = options.flowpic.resolution;
    model_config.num_classes = data.num_classes();
    model_config.with_dropout = options.with_dropout;
    model_config.projection_dim = options.projection_dim;
    model_config.seed = util::mix_seed(pretrain_seed, 0xB401);

    auto network = make_byol_network(model_config);
    const augment::ViewPairGenerator views(options.first, options.second, options.flowpic);

    ByolConfig pretrain_config;
    pretrain_config.max_epochs = options.pretrain_max_epochs;
    pretrain_config.seed = util::mix_seed(pretrain_seed, 0xB402);
    pretrain_config.hooks = options.hooks;
    const auto pretrain_result = pretrain_byol(network, pool, views, pretrain_config);

    // 10-shot labeled subset of the pool, as in run_ucdavis_simclr.
    util::Rng label_rng(util::mix_seed(finetune_seed, 0xF1E7));
    flow::Dataset pool_dataset;
    pool_dataset.class_names = data.pretraining.class_names;
    pool_dataset.flows = pool;
    std::vector<flow::Flow> labeled;
    for (std::size_t label = 0; label < pool_dataset.num_classes(); ++label) {
        auto indices = pool_dataset.indices_of_class(label);
        label_rng.shuffle(indices);
        const std::size_t take = std::min(options.finetune_per_class, indices.size());
        for (std::size_t i = 0; i < take; ++i) {
            labeled.push_back(pool_dataset.flows[indices[i]]);
        }
    }

    const auto train_set = rasterize(labeled, options.flowpic);
    const auto script_set = rasterize(data.script.flows, options.flowpic);
    const auto human_set = rasterize(data.human.flows, options.flowpic);

    nn::ModelConfig head_config = model_config;
    head_config.seed = util::mix_seed(finetune_seed, 0x4EAD);
    auto head = nn::make_finetune_head(head_config);
    auto ft_config = finetune_config(util::mix_seed(finetune_seed, 0x7A1));
    ft_config.hooks = options.hooks;

    const auto train_embedded = embed_set(network.online, train_set);
    const auto head_result = train_head(head, train_embedded, ft_config);

    SimClrRunResult result{
        .script_confusion =
            evaluate_head(head, embed_set(network.online, script_set), data.num_classes()),
        .human_confusion =
            evaluate_head(head, embed_set(network.online, human_set), data.num_classes()),
        .pretrain_epochs = pretrain_result.epochs_run,
        .top5_accuracy = 0.0, // BYOL has no contrastive accuracy (no negatives)
        .retries = pretrain_result.retries + head_result.retries,
        .faults_detected = pretrain_result.faults_detected + head_result.faults_detected,
    };
    return result;
}

} // namespace fptc::core
