#include "fptc/core/guard.hpp"

#include "fptc/nn/serialize.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/rng.hpp"

#include <cmath>
#include <sstream>
#include <utility>

namespace fptc::core {

DivergenceGuard::DivergenceGuard(std::vector<nn::Parameter*> parameters, GuardConfig config)
    : parameters_(std::move(parameters)), config_(config)
{
    commit();
    consecutive_failures_ = 0;
}

bool DivergenceGuard::step_diverged(double loss)
{
    bool diverged = false;
    if (util::fault_injector().inject_nan_loss()) {
        // The injected fault stands in for a NaN that a real divergence
        // would have produced on this step.
        diverged = true;
    } else if (!std::isfinite(loss) || std::abs(loss) > config_.loss_limit) {
        diverged = true;
    } else {
        // Exploding gradients show up in the global norm one step before
        // they reach the loss; cheap single pass over the parameter set.
        double norm_sq = 0.0;
        for (const auto* p : parameters_) {
            const auto grad = p->grad.data();
            for (const float g : grad) {
                norm_sq += static_cast<double>(g) * g;
            }
        }
        diverged = !std::isfinite(norm_sq) ||
                   norm_sq > config_.grad_norm_limit * config_.grad_norm_limit;
    }
    if (diverged) {
        ++faults_detected_;
    }
    return diverged;
}

void DivergenceGuard::commit()
{
    std::ostringstream buffer(std::ios::binary);
    nn::save_parameters(parameters_, buffer);
    snapshot_ = buffer.str();
    consecutive_failures_ = 0;
}

bool DivergenceGuard::rollback()
{
    std::istringstream buffer(snapshot_, std::ios::binary);
    nn::load_parameters(parameters_, buffer);
    for (auto* p : parameters_) {
        p->zero_grad();
    }
    ++retries_;
    ++consecutive_failures_;
    util::log_info("divergence guard: rolled back to last good epoch (retry " +
                   std::to_string(retries_) + ", consecutive failure " +
                   std::to_string(consecutive_failures_) + "/" +
                   std::to_string(config_.max_retries) + ")");
    return consecutive_failures_ <= config_.max_retries;
}

std::uint64_t DivergenceGuard::retry_seed(std::uint64_t base) const noexcept
{
    return util::mix_seed(base, 0x2E72, static_cast<std::uint64_t>(retries_));
}

} // namespace fptc::core
