#include "fptc/core/trainer.hpp"

#include "fptc/nn/loss.hpp"
#include "fptc/nn/optimizer.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

namespace fptc::core {

TrainResult train_supervised(nn::Sequential& network, const SampleSet& train,
                             const SampleSet& validation, const TrainConfig& config)
{
    if (train.size() == 0) {
        throw std::invalid_argument("train_supervised: empty training set");
    }
    util::Rng rng(config.seed);
    const auto make_optimizer = [&]() -> std::unique_ptr<nn::Optimizer> {
        if (config.use_adam) {
            return std::make_unique<nn::Adam>(network.parameters(), config.learning_rate);
        }
        return std::make_unique<nn::Sgd>(network.parameters(), config.learning_rate);
    };
    auto optimizer = make_optimizer();
    DivergenceGuard guard(network.parameters(), config.guard);

    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    TrainResult result;
    double best_monitored = std::numeric_limits<double>::infinity();
    int epochs_since_improvement = 0;
    const bool monitor_validation = validation.size() > 0;

    for (int epoch = 0; epoch < config.max_epochs;) {
        FPTC_TRACE_SPAN("epoch");
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t batches = 0;
        bool diverged = false;
        for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
            config.hooks.poll();
            const std::size_t end = std::min(start + config.batch_size, order.size());
            const std::span<const std::size_t> batch_indices(order.data() + start, end - start);
            const auto inputs = [&] {
                FPTC_TRACE_SPAN("datagen");
                return train.batch(batch_indices);
            }();
            std::vector<std::size_t> batch_labels(batch_indices.size());
            for (std::size_t i = 0; i < batch_indices.size(); ++i) {
                batch_labels[i] = train.labels[batch_indices[i]];
            }
            const auto logits = [&] {
                FPTC_TRACE_SPAN("forward");
                return network.forward(inputs, /*training=*/true);
            }();
            const auto loss = [&] {
                FPTC_TRACE_SPAN("loss");
                return nn::cross_entropy(logits, batch_labels);
            }();
            {
                FPTC_TRACE_SPAN("backward");
                network.zero_grad();
                (void)network.backward(loss.grad);
            }
            if (guard.step_diverged(loss.loss)) {
                diverged = true;
                break; // abort the epoch before the bad update is applied
            }
            {
                FPTC_TRACE_SPAN("optimizer");
                optimizer->step();
            }
            epoch_loss += loss.loss;
            ++batches;
        }
        if (diverged) {
            if (!guard.rollback()) {
                throw DivergenceError("train_supervised: diverged " +
                                      std::to_string(guard.retries()) +
                                      " time(s); retry budget exhausted");
            }
            // Fresh optimizer state and a derived shuffle stream, then
            // re-run the same epoch from the last good snapshot.
            optimizer = make_optimizer();
            rng = util::Rng(guard.retry_seed(config.seed));
            continue;
        }
        guard.commit();
        result.final_train_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
        result.epochs_run = epoch + 1;

        const double monitored =
            monitor_validation ? evaluate_loss(network, validation) : result.final_train_loss;
        result.validation_history.push_back(monitored);

        if (monitored < best_monitored - config.min_delta) {
            best_monitored = monitored;
            epochs_since_improvement = 0;
        } else {
            ++epochs_since_improvement;
            if (epochs_since_improvement >= config.patience) {
                break;
            }
        }
        ++epoch;
    }
    result.best_validation_loss = best_monitored;
    result.retries = guard.retries();
    result.faults_detected = guard.faults_detected();
    return result;
}

stats::ConfusionMatrix evaluate(nn::Sequential& network, const SampleSet& samples,
                                std::size_t num_classes, std::size_t batch_size)
{
    stats::ConfusionMatrix confusion(num_classes);
    std::vector<std::size_t> indices(batch_size);
    for (std::size_t start = 0; start < samples.size(); start += batch_size) {
        const std::size_t end = std::min(start + batch_size, samples.size());
        indices.resize(end - start);
        for (std::size_t i = 0; i < indices.size(); ++i) {
            indices[i] = start + i;
        }
        const auto logits = network.forward(samples.batch(indices), /*training=*/false);
        const auto predictions = nn::argmax_rows(logits);
        for (std::size_t i = 0; i < indices.size(); ++i) {
            confusion.add(samples.labels[indices[i]], predictions[i]);
        }
    }
    return confusion;
}

double evaluate_loss(nn::Sequential& network, const SampleSet& samples, std::size_t batch_size)
{
    if (samples.size() == 0) {
        return 0.0;
    }
    double total = 0.0;
    std::size_t count = 0;
    std::vector<std::size_t> indices(batch_size);
    for (std::size_t start = 0; start < samples.size(); start += batch_size) {
        const std::size_t end = std::min(start + batch_size, samples.size());
        indices.resize(end - start);
        std::vector<std::size_t> batch_labels(end - start);
        for (std::size_t i = 0; i < indices.size(); ++i) {
            indices[i] = start + i;
            batch_labels[i] = samples.labels[start + i];
        }
        const auto logits = network.forward(samples.batch(indices), /*training=*/false);
        const auto loss = nn::cross_entropy(logits, batch_labels);
        total += loss.loss * static_cast<double>(end - start);
        count += end - start;
    }
    return total / static_cast<double>(count);
}

} // namespace fptc::core
